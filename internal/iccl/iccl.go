// Package iccl implements LaunchMON's Internal Collective Communication
// Layer (paper §3.3): the minimal inter-daemon communication substrate
// used to propagate and gather launch/setup information. Daemons bootstrap
// a k-ary tree over the RM-provided node list (their rank and the list
// arrive in the environment the RM sets when spawning them) and then
// perform simple barriers, broadcasts, gathers and scatters.
//
// ICCL deliberately provides only these four collectives: it is not a
// general TBŌN replacement (tools needing scalable filtering/reduction
// should layer MRNet-like infrastructure — internal/tbon — on top), but it
// is enough to launch daemons and hand tools a rudimentary coordination
// fabric.
package iccl

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"launchmon/internal/cluster"
	"launchmon/internal/lmonp"
	"launchmon/internal/obs"
	"launchmon/internal/simnet"
	"launchmon/internal/vtime"
)

// Collective opcodes on tree links.
const (
	opJoin      = 1 // child → parent: rank announcement at bootstrap
	opReady     = 2 // child → parent: subtree fully connected (count)
	opBarrier   = 3
	opRelease   = 4
	opBcast     = 5
	opGather    = 6
	opScatter   = 7
	opHeartbeat = 12 // child → parent: health beat piggybacked on the tree link
	opFold      = 13 // child → parent: combined blob of a FoldUp tree reduction
	opCredit    = 14 // receiver → sender: flow-control credits for a tagged stream
)

// Config describes one daemon's place in the ICCL tree.
type Config struct {
	Rank     int      // this daemon's rank (0 = master)
	Size     int      // total daemons
	Fanout   int      // tree fanout; 0 means flat (1-deep: everyone under rank 0)
	Nodelist []string // node names indexed by rank
	Port     int      // per-session TCP port each daemon listens on

	// PerMsgCost is the CPU charge for handling one tree message
	// (default 150us).
	PerMsgCost time.Duration
	// DialRetry and DialAttempts bound the child→parent connect loop
	// (parents may not be listening yet when a child daemon starts).
	DialRetry    time.Duration
	DialAttempts int

	// JoinTimeout bounds how long bootstrap waits for each successive
	// child join (and subtree-ready report) once this daemon is accepting.
	// Zero disables the deadline — the default, because under a healthy RM
	// children may legitimately join minutes of virtual time apart while a
	// large spawn wave sweeps the machine. Sessions running the failure
	// detector plumb its Period×(Miss+1) bound here, so a child that dies
	// before ever dialing its parent surfaces as a wrapped ErrBootstrap
	// subtree error within the detector's own bound instead of hanging the
	// forming tree.
	JoinTimeout time.Duration

	// Metrics receives link-level counters (iccl.tx/rx frames and bytes,
	// dial retries) when set; nil disables instrumentation at zero cost.
	Metrics *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.Fanout <= 0 {
		c.Fanout = c.Size // flat: rank 0 parents everyone
	}
	if c.PerMsgCost == 0 {
		c.PerMsgCost = 150 * time.Microsecond
	}
	if c.DialRetry == 0 {
		c.DialRetry = 5 * time.Millisecond
	}
	if c.DialAttempts == 0 {
		// Children may come up long before their parent when the RM is
		// still spawning thousands of sibling daemons; allow a 30s window.
		c.DialAttempts = 6000
	}
	return c
}

// Comm is a bootstrapped ICCL communicator.
type Comm struct {
	p    *cluster.Proc
	cfg  Config
	rank int
	size int

	parent   *simnet.Conn   // nil at root
	children []*simnet.Conn // indexed by child slot
	childRk  []int          // rank of each child slot

	muxMu sync.Mutex
	mux   map[*simnet.Conn]*linkMux // set by ShareLinks, nil before

	rtMu    sync.Mutex
	routers map[*simnet.Conn]*connRouter // set by startRouter, nil before

	// Metric handles, interned once at bootstrap (nil = obs off; all
	// methods on nil handles no-op).
	txFrames, txBytes, rxFrames, rxBytes *obs.Counter
	collTxFrames, collTxBytes            *obs.Counter
	creditTxFrames                       *obs.Counter
	collDepthMax, collBytesMax           *obs.Gauge
}

// bindMetrics interns the communicator's counter handles from cfg.Metrics.
func (c *Comm) bindMetrics() {
	reg := c.cfg.Metrics
	c.txFrames = reg.Counter("iccl.tx.frames")
	c.txBytes = reg.Counter("iccl.tx.bytes")
	c.rxFrames = reg.Counter("iccl.rx.frames")
	c.rxBytes = reg.Counter("iccl.rx.bytes")
	c.collTxFrames = reg.Counter("coll.tx.frames")
	c.collTxBytes = reg.Counter("coll.tx.bytes")
	c.creditTxFrames = reg.Counter("coll.credit.tx.frames")
	c.collDepthMax = reg.Gauge("coll.queue.depth.max")
	c.collBytesMax = reg.Gauge("coll.link.bytes.max")
}

// send writes one tree frame, counting it when metrics are bound. All
// collective sends go through here so wire-byte invariants (bench
// assertions on O(K) claims) observe every frame.
func (c *Comm) send(conn *simnet.Conn, frame []byte) error {
	c.txFrames.Inc()
	c.txBytes.Add(uint64(len(frame)))
	return lmonp.WriteFrame(conn, frame)
}

// Errors from the collective layer.
var (
	ErrBootstrap = errors.New("iccl: bootstrap failed")
	ErrProtocol  = errors.New("iccl: protocol violation")
	// ErrSevered reports a shared tree link whose peer died: the mux
	// reader saw the connection fail and closed both demux queues.
	ErrSevered = errors.New("iccl: link severed")
)

// linkMux demultiplexes one shared tree connection: an event-driven framer
// registered on the conn (simnet.Conn.Handle via lmonp.HandleFrames) owns
// it and sorts incoming frames into the collective queue (charged the ICCL
// per-message cost at arrival) and the heartbeat queue (left for the health
// layer to charge). Both queues close when the connection dies, which is
// how links-mode health detects peer death. No goroutine is parked per
// link: the framer is a state machine on the vtime scheduler whose
// busy-until horizon reproduces the serial charging of the reader loop it
// replaced — frame i is delivered at max(arrival_i, done_{i-1}) + cost.
type linkMux struct {
	frames *vtime.Chan[[]byte]
	hb     *vtime.Chan[[]byte]
}

// Link is one shared tree connection exposed for heartbeat piggybacking
// (health link reuse): Send ships one heartbeat payload to the peer, and
// Recv yields heartbeat payloads from the peer, closing when the
// connection dies. Collective traffic keeps flowing on the same conn.
type Link struct {
	Rank int                        // peer daemon rank
	Send func(payload []byte) error // ship one heartbeat to the peer
	Recv *vtime.Chan[[]byte]        // heartbeats from the peer
}

// ShareLinks switches every tree connection to multiplexed mode and
// returns heartbeat handles: the parent link (nil at the root) and one
// link per connected child. Call it only after all one-shot bootstrap
// traffic (the session seed in particular) has drained; from then on the
// mux readers own the connections and all collective receives go through
// the demux queues. Close still tears the connections down.
func (c *Comm) ShareLinks() (parent *Link, children []*Link) {
	c.muxMu.Lock()
	defer c.muxMu.Unlock()
	if c.mux != nil {
		panic("iccl: ShareLinks called twice")
	}
	c.mux = make(map[*simnet.Conn]*linkMux, len(c.children)+1)
	mklink := func(conn *simnet.Conn, rank int) *Link {
		m := &linkMux{
			frames: vtime.NewChan[[]byte](c.p.Sim()),
			hb:     vtime.NewChan[[]byte](c.p.Sim()),
		}
		c.mux[conn] = m
		sim := c.p.Sim()
		// busyUntil is the serial reader's virtual-time horizon: the instant
		// the previous collective frame's per-message charge finishes. It is
		// only touched from scheduler callbacks, which never overlap.
		var busyUntil time.Duration
		lmonp.HandleFrames(conn, func(raw []byte, err error) {
			now := sim.Now()
			if err != nil {
				// The serial reader only observed the failure after charging
				// every frame before it; close behind the same horizon so
				// in-flight deliveries are not dropped.
				if busyUntil <= now {
					m.frames.Close()
					m.hb.Close()
					return
				}
				sim.After(busyUntil-now, func() {
					m.frames.Close()
					m.hb.Close()
				})
				return
			}
			if len(raw) >= 4 && binary.BigEndian.Uint32(raw) == opHeartbeat {
				// Heartbeats are charged by the health layer when it
				// consumes them, at its own (cheaper) per-message cost —
				// but one queued behind a still-cooking collective frame
				// waits for it, exactly like the serial reader it replaced.
				hb := raw[4:]
				if busyUntil <= now {
					m.hb.Send(hb)
					return
				}
				sim.After(busyUntil-now, func() { m.hb.Send(hb) })
				return
			}
			readAt := now
			if busyUntil > readAt {
				readAt = busyUntil
			}
			deliverAt := readAt + c.cfg.PerMsgCost
			busyUntil = deliverAt
			sim.After(deliverAt-now, func() { m.frames.Send(raw) })
		})
		return &Link{
			Rank: rank,
			Send: func(payload []byte) error {
				b := lmonp.AppendUint32(make([]byte, 0, 4+len(payload)), opHeartbeat)
				b = append(b, payload...)
				return lmonp.WriteFrame(conn, b)
			},
			Recv: m.hb,
		}
	}
	if c.parent != nil {
		parent = mklink(c.parent, Parent(c.rank, c.cfg.Fanout))
	}
	children = make([]*Link, len(c.children))
	for slot, conn := range c.children {
		children[slot] = mklink(conn, c.childRk[slot])
	}
	return parent, children
}

// recvRaw reads one raw non-plane frame from a tree connection. Once the
// collective-plane router owns the connection (startRouter), base frames
// are served from its demux queue; before that, reads go through the
// shared-link mux (ShareLinks) or directly off the connection.
func (c *Comm) recvRaw(conn *simnet.Conn) ([]byte, error) {
	if rt := c.routerFor(conn); rt != nil {
		raw, ok := rt.base.Recv()
		if !ok {
			return nil, rt.takeErr()
		}
		return raw, nil
	}
	return c.recvRawDirect(conn)
}

// recvRawDirect reads one raw frame from a tree connection, going through
// the demux queue when the link is shared (ShareLinks) and reading
// directly otherwise. The ICCL per-message cost is charged exactly once
// either way: here on the direct path, by the mux reader on the shared
// path. It is the router goroutine's read primitive; everything else
// must go through recvRaw.
func (c *Comm) recvRawDirect(conn *simnet.Conn) ([]byte, error) {
	c.muxMu.Lock()
	m := c.mux[conn]
	c.muxMu.Unlock()
	if m != nil {
		raw, ok := m.frames.Recv()
		if !ok {
			return nil, ErrSevered
		}
		c.countRx(raw)
		return raw, nil
	}
	raw, err := lmonp.ReadFrame(conn)
	if err != nil {
		return nil, err
	}
	c.p.Compute(c.cfg.PerMsgCost)
	c.countRx(raw)
	return raw, nil
}

// countRx tallies one received tree frame (both recvRaw paths).
func (c *Comm) countRx(raw []byte) {
	c.rxFrames.Inc()
	c.rxBytes.Add(uint64(len(raw)))
}

// Parent returns the parent rank of r in a k-ary tree (r>0).
func Parent(r, fanout int) int { return (r - 1) / fanout }

// Children returns the child ranks of r in a k-ary tree of the given size.
func Children(r, size, fanout int) []int {
	var out []int
	for c := r*fanout + 1; c <= r*fanout+fanout && c < size; c++ {
		out = append(out, c)
	}
	return out
}

// SubtreeRanks returns all ranks in r's subtree (including r), ascending.
func SubtreeRanks(r, size, fanout int) []int {
	out := []int{r}
	for i := 0; i < len(out); i++ {
		out = append(out, Children(out[i], size, fanout)...)
	}
	// BFS order from a heap layout is already ascending within levels but
	// not globally; sort for a stable contract.
	sortInts(out)
	return out
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// Bootstrap connects the calling daemon into the tree and blocks until the
// entire subtree below it (and, at the root, the whole tree) is connected.
// The root's return therefore marks the fabric-setup completion (event e9
// of the paper's critical path).
func Bootstrap(p *cluster.Proc, cfg Config) (*Comm, error) {
	cfg = cfg.withDefaults()
	return bootstrap(p, &cfg, nil, nil)
}

// bootstrap is the shared tree-formation engine. The hooks expose links as
// soon as they carry traffic — onParent right after the join is sent,
// onChild right after a child's join is validated — so BootstrapSeed can
// stream the session seed through the still-forming tree. Both may be nil.
// cfg must already have its defaults applied.
//
// The phases live in separate methods (dialJoin, acceptChildren,
// readyWave) on purpose: every daemon goroutine parks through this path,
// and each phase's working set — dial address, join/ready frames, reader
// state — dies with its frame instead of widening one long-lived frame
// under which the whole launch then runs. Keeping the resident chain
// shallow here is what holds a parked daemon inside the runtime's initial
// stack segments; at a million daemons each extra segment doubling is
// gigabytes of simulator RSS.
func bootstrap(p *cluster.Proc, cfg *Config, onParent func(*simnet.Conn), onChild func(slot int, conn *simnet.Conn)) (*Comm, error) {
	if cfg.Size <= 0 || cfg.Rank < 0 || cfg.Rank >= cfg.Size {
		return nil, fmt.Errorf("%w: bad rank/size %d/%d", ErrBootstrap, cfg.Rank, cfg.Size)
	}
	if len(cfg.Nodelist) != cfg.Size {
		return nil, fmt.Errorf("%w: nodelist has %d entries for size %d", ErrBootstrap, len(cfg.Nodelist), cfg.Size)
	}
	c := &Comm{p: p, cfg: *cfg, rank: cfg.Rank, size: cfg.Size}
	c.bindMetrics()
	kids := Children(cfg.Rank, cfg.Size, cfg.Fanout)

	var l *simnet.Listener
	if len(kids) > 0 {
		var err error
		l, err = p.Host().Listen(cfg.Port)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBootstrap, err)
		}
		defer l.Close()
	}

	if cfg.Rank > 0 {
		if err := c.dialJoin(p, cfg, onParent); err != nil {
			return nil, err
		}
	}
	if err := c.acceptChildren(p, cfg, l, kids, onChild); err != nil {
		return nil, err
	}
	if err := c.readyWave(p, cfg); err != nil {
		return nil, err
	}
	return c, nil
}

// dialJoin connects upward and announces this rank to its parent
// (children race their parents coming up; retry).
func (c *Comm) dialJoin(p *cluster.Proc, cfg *Config, onParent func(*simnet.Conn)) error {
	parentRank := Parent(cfg.Rank, cfg.Fanout)
	// Deterministic sub-microsecond dial skew: siblings spawned at the
	// same virtual instant would otherwise tie their joins at the
	// parent's listener, and the accept order of tied joins is a host
	// race. Since the parent's per-join handling cost ladders whatever
	// follows a join (the seed catch-up of BootstrapSeed in particular),
	// that race would leak host scheduling into virtual time. One
	// nanosecond per sibling slot breaks ties in rank order at no
	// measurable cost (≤ fanout ns).
	slot := cfg.Rank - (parentRank*cfg.Fanout + 1)
	if slot > 0 {
		p.Sim().Sleep(time.Duration(slot))
	}
	addr := simnet.Addr{Host: cfg.Nodelist[parentRank], Port: cfg.Port}
	retries := cfg.Metrics.Counter("iccl.dial.retries")
	var conn *simnet.Conn
	var err error
	for attempt := 0; attempt < cfg.DialAttempts; attempt++ {
		conn, err = p.Host().Dial(addr)
		if err == nil {
			break
		}
		retries.Inc()
		p.Sim().Sleep(cfg.DialRetry)
	}
	if err != nil {
		return fmt.Errorf("%w: dialing parent %d: %v", ErrBootstrap, parentRank, err)
	}
	c.parent = conn
	join := lmonp.AppendUint32(nil, opJoin)
	join = lmonp.AppendUint32(join, uint32(cfg.Rank))
	if err := c.send(conn, join); err != nil {
		return fmt.Errorf("%w: join: %v", ErrBootstrap, err)
	}
	if onParent != nil {
		onParent(conn)
	}
	return nil
}

// acceptChildren accepts and validates one join per expected child.
func (c *Comm) acceptChildren(p *cluster.Proc, cfg *Config, l *simnet.Listener, kids []int, onChild func(slot int, conn *simnet.Conn)) error {
	c.children = make([]*simnet.Conn, len(kids))
	c.childRk = append([]int(nil), kids...)
	for range kids {
		var conn *simnet.Conn
		var err error
		if cfg.JoinTimeout > 0 {
			conn, err = l.AcceptTimeout(cfg.JoinTimeout)
		} else {
			conn, err = l.Accept()
		}
		if err != nil {
			return c.failBootstrap(fmt.Errorf("%w: accept: %v", ErrBootstrap, err))
		}
		frame, err := lmonp.ReadFrame(conn)
		if err != nil {
			return c.failBootstrap(fmt.Errorf("%w: join frame: %v", ErrBootstrap, err))
		}
		p.Compute(cfg.PerMsgCost)
		c.countRx(frame)
		rd := lmonp.NewReader(frame)
		op, _ := rd.Uint32()
		rk32, err := rd.Uint32()
		if err != nil || op != opJoin {
			return c.failBootstrap(fmt.Errorf("%w: bad join", ErrBootstrap))
		}
		slot := -1
		for i, k := range kids {
			if k == int(rk32) {
				slot = i
			}
		}
		if slot < 0 || c.children[slot] != nil {
			return c.failBootstrap(fmt.Errorf("%w: unexpected child rank %d", ErrBootstrap, rk32))
		}
		c.children[slot] = conn
		if onChild != nil {
			onChild(slot, conn)
		}
	}
	return nil
}

// readyWave waits for all children to report their subtree connected,
// then reports upward (the root instead checks the full count).
func (c *Comm) readyWave(p *cluster.Proc, cfg *Config) error {
	total := 1
	for _, conn := range c.children {
		var frame []byte
		var err error
		if cfg.JoinTimeout > 0 {
			frame, err = readFrameTimeout(conn, cfg.JoinTimeout)
		} else {
			frame, err = lmonp.ReadFrame(conn)
		}
		if err != nil {
			return c.failBootstrap(fmt.Errorf("%w: ready: %v", ErrBootstrap, err))
		}
		p.Compute(cfg.PerMsgCost)
		c.countRx(frame)
		rd := lmonp.NewReader(frame)
		op, _ := rd.Uint32()
		n32, err := rd.Uint32()
		if err != nil || op != opReady {
			return c.failBootstrap(fmt.Errorf("%w: bad ready", ErrBootstrap))
		}
		total += int(n32)
	}
	if c.parent != nil {
		rdy := lmonp.AppendUint32(nil, opReady)
		rdy = lmonp.AppendUint32(rdy, uint32(total))
		if err := c.send(c.parent, rdy); err != nil {
			return c.failBootstrap(fmt.Errorf("%w: ready up: %v", ErrBootstrap, err))
		}
	} else if total != cfg.Size {
		return c.failBootstrap(fmt.Errorf("%w: connected %d of %d daemons", ErrBootstrap, total, cfg.Size))
	}
	return nil
}

// readFrameTimeout reads one length-prefixed tree frame with a
// virtual-time deadline. Tree frames are written one per network message
// (lmonp.WriteFrame is a single Write call), so a whole-message timed
// receive unwraps to exactly one frame.
func readFrameTimeout(conn *simnet.Conn, d time.Duration) ([]byte, error) {
	msg, err := conn.RecvMessageTimeout(d)
	if err != nil {
		return nil, err
	}
	return lmonp.FrameFromMessage(msg)
}

// failBootstrap tears down whatever part of the tree this daemon already
// formed — the parent link and any accepted children — so ranks blocked on
// this subtree observe the failure (their reads end) instead of waiting
// forever on a silently absent branch. It returns err unchanged for use in
// bootstrap's error returns.
func (c *Comm) failBootstrap(err error) error {
	if c.parent != nil {
		c.parent.Close()
	}
	for _, conn := range c.children {
		if conn != nil {
			conn.Close()
		}
	}
	return err
}

// Rank returns this daemon's rank (0 is the master).
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of daemons in the communicator.
func (c *Comm) Size() int { return c.size }

// IsMaster reports whether this daemon is rank 0.
func (c *Comm) IsMaster() bool { return c.rank == 0 }

// Close tears down the tree links.
func (c *Comm) Close() {
	if c.parent != nil {
		c.parent.Close()
	}
	for _, conn := range c.children {
		conn.Close()
	}
}

func (c *Comm) recvOp(conn *simnet.Conn, want uint32) (*lmonp.Reader, error) {
	frame, err := c.recvRaw(conn)
	if err != nil {
		return nil, err
	}
	rd := lmonp.NewReader(frame)
	op, err := rd.Uint32()
	if err != nil {
		return nil, err
	}
	if op != want {
		return nil, fmt.Errorf("%w: got op %d want %d", ErrProtocol, op, want)
	}
	return rd, nil
}

// Barrier blocks until every daemon has entered it.
func (c *Comm) Barrier() error {
	for _, conn := range c.children {
		if _, err := c.recvOp(conn, opBarrier); err != nil {
			return err
		}
	}
	if c.parent != nil {
		if err := c.send(c.parent, lmonp.AppendUint32(nil, opBarrier)); err != nil {
			return err
		}
		if _, err := c.recvOp(c.parent, opRelease); err != nil {
			return err
		}
	}
	rel := lmonp.AppendUint32(nil, opRelease)
	for _, conn := range c.children {
		if err := c.send(conn, rel); err != nil {
			return err
		}
	}
	return nil
}

// Broadcast distributes buf from the master to every daemon; every caller
// returns the broadcast bytes (the master returns buf unchanged).
func (c *Comm) Broadcast(buf []byte) ([]byte, error) {
	if c.parent != nil {
		rd, err := c.recvOp(c.parent, opBcast)
		if err != nil {
			return nil, err
		}
		buf, err = rd.Bytes()
		if err != nil {
			return nil, err
		}
		buf = append([]byte(nil), buf...)
	}
	frame := lmonp.AppendUint32(nil, opBcast)
	frame = lmonp.AppendBytes(frame, buf)
	for _, conn := range c.children {
		if err := c.send(conn, frame); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// Gather collects one byte slice from every daemon; the master receives
// them indexed by rank, other daemons receive nil. The receive and send
// phases sit in their own frames (gatherChildren, gatherUp) so their
// decode/pack state is gone from the stack while the daemon parks under
// the collective — the same shallow-resident-frame rule bootstrap follows.
func (c *Comm) Gather(mine []byte) ([][]byte, error) {
	collected := map[int][]byte{c.rank: mine}
	if err := c.gatherChildren(collected); err != nil {
		return nil, err
	}
	if c.parent != nil {
		if err := c.gatherUp(collected); err != nil {
			return nil, err
		}
		return nil, nil
	}
	out := make([][]byte, c.size)
	if len(collected) != c.size {
		return nil, fmt.Errorf("%w: gathered %d of %d contributions", ErrProtocol, len(collected), c.size)
	}
	for rk, blob := range collected {
		out[rk] = blob
	}
	return out, nil
}

// gatherChildren merges each child subtree's gather contribution into
// collected.
func (c *Comm) gatherChildren(collected map[int][]byte) error {
	for _, conn := range c.children {
		rd, err := c.recvOp(conn, opGather)
		if err != nil {
			return err
		}
		n, err := rd.Uint32()
		if err != nil {
			return err
		}
		for i := uint32(0); i < n; i++ {
			rk, err := rd.Uint32()
			if err != nil {
				return err
			}
			blob, err := rd.Bytes()
			if err != nil {
				return err
			}
			collected[int(rk)] = append([]byte(nil), blob...)
		}
	}
	return nil
}

// gatherUp packs this subtree's contributions and sends them to the parent.
func (c *Comm) gatherUp(collected map[int][]byte) error {
	frame := lmonp.AppendUint32(nil, opGather)
	frame = lmonp.AppendUint32(frame, uint32(len(collected)))
	ranks := make([]int, 0, len(collected))
	for rk := range collected {
		ranks = append(ranks, rk)
	}
	sortInts(ranks)
	for _, rk := range ranks {
		frame = lmonp.AppendUint32(frame, uint32(rk))
		frame = lmonp.AppendBytes(frame, collected[rk])
	}
	return c.send(c.parent, frame)
}

// FoldUp reduces one byte blob per daemon toward the root with the given
// combine function (acc is nil on the first call; combine must be
// associative and commutative — children fold in connection order, which
// is not rank order). Unlike Gather, interior daemons forward one
// combined blob per link, so the reduction stays O(blob) per link at any
// tree size — this is how the observability plane harvests per-daemon
// metric snapshots without building an O(K) concatenation anywhere. The
// root returns the full fold; every other daemon returns nil. Works both
// before and after ShareLinks (recvRaw demuxes accordingly).
func (c *Comm) FoldUp(mine []byte, combine func(acc, next []byte) ([]byte, error)) ([]byte, error) {
	acc, err := combine(nil, mine)
	if err != nil {
		return nil, err
	}
	for _, conn := range c.children {
		rd, err := c.recvOp(conn, opFold)
		if err != nil {
			return nil, err
		}
		blob, err := rd.Bytes()
		if err != nil {
			return nil, err
		}
		if acc, err = combine(acc, blob); err != nil {
			return nil, err
		}
	}
	if c.parent != nil {
		frame := lmonp.AppendUint32(nil, opFold)
		frame = lmonp.AppendBytes(frame, acc)
		if err := c.send(c.parent, frame); err != nil {
			return nil, err
		}
		return nil, nil
	}
	return acc, nil
}

// Scatter delivers parts[rank] to each daemon; only the master's parts
// argument is used, and it must have exactly Size entries.
func (c *Comm) Scatter(parts [][]byte) ([]byte, error) {
	byRank := map[int][]byte{}
	if c.parent == nil {
		if len(parts) != c.size {
			return nil, fmt.Errorf("%w: scatter needs %d parts, got %d", ErrProtocol, c.size, len(parts))
		}
		for rk, p := range parts {
			byRank[rk] = p
		}
	} else {
		rd, err := c.recvOp(c.parent, opScatter)
		if err != nil {
			return nil, err
		}
		n, err := rd.Uint32()
		if err != nil {
			return nil, err
		}
		for i := uint32(0); i < n; i++ {
			rk, err := rd.Uint32()
			if err != nil {
				return nil, err
			}
			blob, err := rd.Bytes()
			if err != nil {
				return nil, err
			}
			byRank[int(rk)] = append([]byte(nil), blob...)
		}
	}
	for slot, conn := range c.children {
		sub := SubtreeRanks(c.childRk[slot], c.size, c.cfg.Fanout)
		frame := lmonp.AppendUint32(nil, opScatter)
		frame = lmonp.AppendUint32(frame, uint32(len(sub)))
		for _, rk := range sub {
			frame = lmonp.AppendUint32(frame, uint32(rk))
			frame = lmonp.AppendBytes(frame, byRank[rk])
		}
		if err := c.send(conn, frame); err != nil {
			return nil, err
		}
	}
	mine, ok := byRank[c.rank]
	if !ok {
		return nil, fmt.Errorf("%w: no scatter part for rank %d", ErrProtocol, c.rank)
	}
	return mine, nil
}

package iccl

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"launchmon/internal/cluster"
	"launchmon/internal/coll"
	"launchmon/internal/lmonp"
	"launchmon/internal/vtime"
)

// Event-driven bootstrap regressions: the lazy seed plumbing must spawn
// goroutines only at ranks that actually forward (never at leaves), and
// the join deadline must turn a child that dies before dialing its parent
// into a prompt wrapped ErrBootstrap instead of a parked-forever accept.

// scriptedSeed returns a root seed source feeding the given bodies
// (frame 0 is the FEData preamble) followed by a digest-carrying End.
func scriptedSeed(bodies [][]byte) SeedSource {
	digest := lmonp.SumInit
	for _, b := range bodies[1:] {
		digest = lmonp.FoldSum(digest, lmonp.Sum64(b))
	}
	idx := 0
	return func() (coll.Frame, error) {
		if idx < len(bodies) {
			f := coll.Frame{
				H:    coll.Header{Op: coll.OpSeed, Index: uint32(idx)},
				Body: bodies[idx],
				Sum:  lmonp.Sum64(bodies[idx]),
			}
			idx++
			return f, nil
		}
		return coll.Frame{
			H:     coll.Header{Op: coll.OpSeed, Index: uint32(idx)},
			End:   true,
			Total: uint64(len(bodies)),
			Sum:   digest,
		}, nil
	}
}

// TestSeedGoroutinesOnlyAtForwardingRanks pins the lazy-spawn contract of
// BootstrapSeed: seed pumps exist only at ranks that must forward while
// their own bootstrap still blocks (the root and interior ranks); child
// forwarders are outbox callbacks, not goroutines; and leaves — the
// overwhelming majority at scale — spawn nothing at all.
func TestSeedGoroutinesOnlyAtForwardingRanks(t *testing.T) {
	const n, fanout = 13, 3
	sim := vtime.New()
	var spawned []string
	sim.SetSpawnObserver(func(name string) {
		if strings.HasPrefix(name, "iccl-seed-") {
			spawned = append(spawned, name)
		}
	})
	cl, err := cluster.New(sim, cluster.Options{Nodes: n})
	if err != nil {
		t.Fatal(err)
	}
	nodelist := make([]string, n)
	for i := range nodelist {
		nodelist[i] = cl.Node(i).Name()
	}
	bodies := [][]byte{[]byte("fedata"), []byte("chunk-0"), []byte("chunk-1")}
	errs := make([]error, n)
	sim.Go("boot", func() {
		for i := 0; i < n; i++ {
			i := i
			if _, err := cl.Node(i).SpawnProc(cluster.Spec{Exe: "d", Main: func(p *cluster.Proc) {
				var src SeedSource
				if i == 0 {
					src = scriptedSeed(bodies)
				}
				c, seed, err := BootstrapSeed(p, Config{
					Rank: i, Size: n, Fanout: fanout, Nodelist: nodelist, Port: 50004,
				}, src)
				if err != nil {
					errs[i] = err
					return
				}
				defer c.Close()
				for {
					f, err := seed.Next()
					if err != nil {
						errs[i] = err
						return
					}
					if f.End {
						break
					}
				}
				errs[i] = seed.Wait()
			}}); err != nil {
				t.Error(err)
				return
			}
		}
	})
	sim.Run()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("daemon %d: %v", i, err)
		}
	}

	pumps := 0
	for _, name := range spawned {
		var rank int
		if !strings.HasPrefix(name, "iccl-seed-pump-") {
			t.Errorf("unexpected seed goroutine %q (forwarding is outbox callbacks, not goroutines)", name)
			continue
		}
		if _, err := fmt.Sscanf(name, "iccl-seed-pump-%d", &rank); err != nil {
			t.Fatalf("unparseable pump name %q", name)
		}
		if rank != 0 && len(Children(rank, n, fanout)) == 0 {
			t.Errorf("leaf rank %d spawned a seed pump", rank)
		}
		pumps++
	}
	wantPumps := 0
	for r := 0; r < n; r++ {
		if r == 0 || len(Children(r, n, fanout)) > 0 {
			wantPumps++
		}
	}
	if pumps != wantPumps {
		t.Errorf("%d seed pumps spawned, want %d (root + interior ranks)", pumps, wantPumps)
	}
}

// TestBootstrapJoinDeadlineSurfacesDeadSubtree kills a daemon before it
// ever dials its parent (here: it simply never starts) and checks the
// join deadline converts the would-be parked-forever accept into a
// wrapped ErrBootstrap that cascades up the chain within the deadline
// budget — the detection bound a health config of Period×Miss implies.
func TestBootstrapJoinDeadlineSurfacesDeadSubtree(t *testing.T) {
	const (
		n           = 3 // fanout-1 chain: 0 → 1 → 2
		joinTimeout = 60 * time.Millisecond
	)
	sim := vtime.New()
	cl, err := cluster.New(sim, cluster.Options{Nodes: n})
	if err != nil {
		t.Fatal(err)
	}
	nodelist := make([]string, n)
	for i := range nodelist {
		nodelist[i] = cl.Node(i).Name()
	}
	errs := make([]error, n)
	took := make([]time.Duration, n)
	sim.Go("boot", func() {
		for i := 0; i < n-1; i++ { // rank 2 is dead on arrival
			i := i
			if _, err := cl.Node(i).SpawnProc(cluster.Spec{Exe: "d", Main: func(p *cluster.Proc) {
				t0 := p.Sim().Now()
				c, err := Bootstrap(p, Config{
					Rank: i, Size: n, Fanout: 1, Nodelist: nodelist, Port: 50005,
					JoinTimeout: joinTimeout,
				})
				took[i] = p.Sim().Now() - t0
				if err == nil {
					c.Close()
				}
				errs[i] = err
			}}); err != nil {
				t.Error(err)
				return
			}
		}
	})
	sim.Run()
	for i := 0; i < n-1; i++ {
		if errs[i] == nil {
			t.Fatalf("rank %d bootstrap succeeded with a dead subtree", i)
		}
		if !errors.Is(errs[i], ErrBootstrap) {
			t.Errorf("rank %d error does not wrap ErrBootstrap: %v", i, errs[i])
		}
		// Rank 1 times out its accept after one deadline; rank 0 sees the
		// cascading link close almost immediately after. Twice the deadline
		// bounds both with room for dial/fork costs.
		if took[i] > 2*joinTimeout {
			t.Errorf("rank %d took %v to fail, budget %v", i, took[i], 2*joinTimeout)
		}
	}
}

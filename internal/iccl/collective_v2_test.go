package iccl

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"launchmon/internal/cluster"
	"launchmon/internal/coll"
	"launchmon/internal/obs"
	"launchmon/internal/simnet"
	"launchmon/internal/vtime"
)

// Plane v2 tests: the tree-internal collectives (Barrier/AllGather/
// AllReduce), concurrent tagged streams, the flow-control window's
// interior-depth bound, and the tag-divergence error contract.

func encU64(v uint64) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, v)
	return b
}

func TestPlaneBarrierReleasesAfterLastEntry(t *testing.T) {
	for _, tc := range treeShapes {
		t.Run(fmt.Sprintf("n%d_f%d", tc.n, tc.fanout), func(t *testing.T) {
			enter := make([]time.Duration, tc.n)
			exit := make([]time.Duration, tc.n)
			rig(t, tc.n, tc.fanout, func(c *Comm, p *cluster.Proc) error {
				pl := c.NewPlane(64, 0, nil, nil) // no FE bridge: the root turns the barrier around
				p.Compute(time.Duration(c.Rank()) * time.Millisecond)
				enter[c.Rank()] = p.Sim().Now()
				if err := pl.Barrier(); err != nil {
					return err
				}
				exit[c.Rank()] = p.Sim().Now()
				return nil
			})
			var last time.Duration
			for _, e := range enter {
				if e > last {
					last = e
				}
			}
			for rk, x := range exit {
				if x < last {
					t.Fatalf("rank %d left the barrier at %v, before the last entry at %v", rk, x, last)
				}
			}
		})
	}
}

func TestPlaneAllGatherShapes(t *testing.T) {
	for _, tc := range treeShapes {
		t.Run(fmt.Sprintf("n%d_f%d", tc.n, tc.fanout), func(t *testing.T) {
			blob := func(rk int) []byte { return bytes.Repeat([]byte{byte(rk)}, 3+rk*11%40) }
			got := make([][][]byte, tc.n)
			rig(t, tc.n, tc.fanout, func(c *Comm, p *cluster.Proc) error {
				pl := c.NewPlane(64, 0, nil, nil)
				all, err := pl.AllGather(blob(c.Rank()))
				if err != nil {
					return err
				}
				got[c.Rank()] = all
				return nil
			})
			for rk, all := range got {
				if len(all) != tc.n {
					t.Fatalf("rank %d assembled %d of %d contributions", rk, len(all), tc.n)
				}
				for src, b := range all {
					if !bytes.Equal(b, blob(src)) {
						t.Fatalf("rank %d holds %d bytes for rank %d, want %d", rk, len(b), src, len(blob(src)))
					}
				}
			}
		})
	}
}

func TestPlaneAllReduceShapes(t *testing.T) {
	for _, tc := range treeShapes {
		t.Run(fmt.Sprintf("n%d_f%d", tc.n, tc.fanout), func(t *testing.T) {
			got := make([][]byte, tc.n)
			rig(t, tc.n, tc.fanout, func(c *Comm, p *cluster.Proc) error {
				pl := c.NewPlane(64, 0, nil, nil)
				out, err := pl.AllReduce(encU64(uint64(c.Rank()+1)), "sum")
				if err != nil {
					return err
				}
				got[c.Rank()] = out
				return nil
			})
			want := uint64(tc.n) * uint64(tc.n+1) / 2
			for rk, out := range got {
				if len(out) != 8 || binary.BigEndian.Uint64(out) != want {
					t.Fatalf("rank %d allreduce sum %v, want %d", rk, out, want)
				}
			}
		})
	}

	// Concat on every rank: each daemon's byte appears exactly once in
	// everyone's result.
	const n = 13
	got := make([][]byte, n)
	rig(t, n, 3, func(c *Comm, p *cluster.Proc) error {
		pl := c.NewPlane(64, 0, nil, nil)
		out, err := pl.AllReduce([]byte{byte(c.Rank())}, "concat")
		if err != nil {
			return err
		}
		got[c.Rank()] = out
		return nil
	})
	for rk, out := range got {
		if len(out) != n {
			t.Fatalf("rank %d concat of %d daemons yields %d bytes", rk, n, len(out))
		}
		seen := make([]bool, n)
		for _, b := range out {
			if int(b) >= n || seen[b] {
				t.Fatalf("rank %d: contribution %d duplicated or out of range", rk, b)
			}
			seen[b] = true
		}
	}
}

func TestPlaneTreeOpsInterleaveLockstepFEOps(t *testing.T) {
	// Tree-lockstep collectives sequence above coll.MaxUserTag, so an FE
	// gather (lockstep tag 1) in the middle of barrier/allgather/allreduce
	// must keep its stream apart.
	const n, fanout = 9, 2
	d := &feDriver{}
	rig(t, n, fanout, func(c *Comm, p *cluster.Proc) error {
		var pl *Plane
		if c.IsMaster() {
			pl = c.NewPlane(64, 0, d.up, d.down)
		} else {
			pl = c.NewPlane(64, 0, nil, nil)
		}
		if err := pl.Barrier(); err != nil {
			return err
		}
		all, err := pl.AllGather([]byte{byte(c.Rank())})
		if err != nil {
			return err
		}
		if len(all) != n {
			return fmt.Errorf("allgather %d of %d", len(all), n)
		}
		if err := pl.Gather([]byte{byte('a' + c.Rank())}); err != nil {
			return err
		}
		out, err := pl.AllReduce(encU64(1), "sum")
		if err != nil {
			return err
		}
		if binary.BigEndian.Uint64(out) != n {
			return fmt.Errorf("allreduce sum %d", binary.BigEndian.Uint64(out))
		}
		return pl.Barrier()
	})
	all, err := d.gatherAtFE(n)
	if err != nil {
		t.Fatal(err)
	}
	for rk, b := range all {
		if len(b) != 1 || b[0] != byte('a'+rk) {
			t.Fatalf("rank %d gathered %q", rk, b)
		}
	}
}

func TestPlaneConcurrentTaggedCollectives(t *testing.T) {
	// Four independent tagged collectives per daemon, each driven by its
	// own goroutine on one shared session tree: the per-connection router
	// must keep the streams apart.
	const n, fanout = 13, 3
	rig(t, n, fanout, func(c *Comm, p *cluster.Proc) error {
		pl := c.NewPlane(64, 0, nil, nil)
		sim := p.Sim()
		rank := c.Rank()
		done := vtime.NewChan[error](sim)
		tag := func(i uint32) uint32 { return coll.MinUserTag + i }

		sim.Go(fmt.Sprintf("ag-%d", rank), func() {
			all, err := pl.AllGatherTag(tag(0), []byte{byte(rank)})
			if err == nil && len(all) != n {
				err = fmt.Errorf("allgather %d of %d", len(all), n)
			}
			if err == nil {
				for src, b := range all {
					if len(b) != 1 || b[0] != byte(src) {
						err = fmt.Errorf("slot %d holds %v", src, b)
						break
					}
				}
			}
			done.Send(err)
		})
		sim.Go(fmt.Sprintf("ar-%d", rank), func() {
			out, err := pl.AllReduceTag(tag(1), encU64(uint64(rank+1)), "sum")
			if err == nil && binary.BigEndian.Uint64(out) != uint64(n)*uint64(n+1)/2 {
				err = fmt.Errorf("sum %d", binary.BigEndian.Uint64(out))
			}
			done.Send(err)
		})
		sim.Go(fmt.Sprintf("bar-%d", rank), func() {
			done.Send(pl.BarrierTag(tag(2)))
		})
		sim.Go(fmt.Sprintf("cc-%d", rank), func() {
			out, err := pl.AllReduceTag(tag(3), []byte{byte(rank)}, "concat")
			if err == nil && len(out) != n {
				err = fmt.Errorf("concat %d bytes", len(out))
			}
			done.Send(err)
		})
		for i := 0; i < 4; i++ {
			err, ok := done.Recv()
			if !ok {
				return fmt.Errorf("done queue closed")
			}
			if err != nil {
				return err
			}
		}
		return nil
	})
}

func TestPlaneUserTagRangeEnforced(t *testing.T) {
	rig(t, 1, 2, func(c *Comm, p *cluster.Proc) error {
		pl := c.NewPlane(0, 0, func(coll.Frame) error { return nil }, nil)
		if err := pl.BarrierTag(coll.MinUserTag - 1); err == nil {
			return fmt.Errorf("lockstep-space tag accepted")
		}
		if _, err := pl.AllGatherTag(coll.MaxUserTag, nil); err == nil {
			return fmt.Errorf("tree-space tag accepted")
		}
		if _, err := pl.AllReduceTag(0, nil, "sum"); err == nil {
			return fmt.Errorf("zero tag accepted")
		}
		return nil
	})
}

func TestPlaneTagMismatchNamesOpTagsAndRank(t *testing.T) {
	// Satellite regression at K = fanout+1: an FE-originated stream whose
	// op/tag does not match the running collective must fail eagerly, and
	// the error must name the offending op, both tags, and the rank.
	const n, fanout = 5, 4
	d := &feDriver{send: coll.RawFrames(coll.OpGather, 9, "", []byte("divergent"), 0)}
	var rootErr error
	rig(t, n, fanout, func(c *Comm, p *cluster.Proc) error {
		var pl *Plane
		if c.IsMaster() {
			pl = c.NewPlane(0, 0, d.up, d.down)
		} else {
			pl = c.NewPlane(0, 0, nil, nil)
		}
		_, err := pl.Broadcast() // lockstep tag 1 at every rank
		if c.IsMaster() {
			rootErr = err
			return nil
		}
		// Non-roots never receive a frame: the root errors out and the rig
		// tears its connections down, which is the failure they observe.
		if err == nil {
			return fmt.Errorf("non-root broadcast succeeded after root divergence")
		}
		return nil
	})
	if rootErr == nil {
		t.Fatal("diverged stream accepted at the root")
	}
	if !errors.Is(rootErr, ErrProtocol) {
		t.Fatalf("divergence error %v does not wrap ErrProtocol", rootErr)
	}
	for _, want := range []string{"gather", "broadcast", "tag 9", "tag 1", "rank 0", "diverged"} {
		if !strings.Contains(rootErr.Error(), want) {
			t.Fatalf("divergence error %q does not name %q", rootErr, want)
		}
	}
}

// runFlowReduce runs one 13-daemon concat reduce with a slowed leaf
// subtree and returns each rank's coll.queue.depth.max high-water gauge.
// Reduce streams chunk their payload (coll.RawFrames), so every link
// carries a long stream; interior nodes drain their child slots
// serially, and rank 4 (slot 0 of interior rank 1) sits on a slow host —
// while rank 1 waits on that slot, ranks 5 and 6 flood theirs. Without
// credits the flood queues O(stream); the window bounds it.
func runFlowReduce(t *testing.T, window int) []uint64 {
	t.Helper()
	const n, fanout, chunk = 13, 3, 64
	payload := bytes.Repeat([]byte{0xA5}, 4096) // ~64 chunks per daemon at chunk=64
	sim := vtime.New()
	cl, err := cluster.New(sim, cluster.Options{
		Nodes: n,
		Net:   simnet.Options{SlowHosts: map[string]float64{"node4": 64}},
	})
	if err != nil {
		t.Fatal(err)
	}
	nodelist := make([]string, n)
	for i := range nodelist {
		nodelist[i] = cl.Node(i).Name()
	}
	regs := make([]*obs.Registry, n)
	for i := range regs {
		regs[i] = obs.NewRegistry()
	}
	d := &feDriver{}
	errs := make([]error, n)
	sim.Go("boot", func() {
		for i := 0; i < n; i++ {
			i := i
			if _, err := cl.Node(i).SpawnProc(cluster.Spec{Exe: "d", Main: func(p *cluster.Proc) {
				c, err := Bootstrap(p, Config{
					Rank: i, Size: n, Fanout: fanout, Nodelist: nodelist, Port: 50001,
					Metrics: regs[i],
				})
				if err != nil {
					errs[i] = err
					return
				}
				defer c.Close()
				var pl *Plane
				if c.IsMaster() {
					pl = c.NewPlane(chunk, window, d.up, d.down)
				} else {
					pl = c.NewPlane(chunk, window, nil, nil)
				}
				errs[i] = pl.Reduce(payload, "concat")
			}}); err != nil {
				t.Error(err)
				return
			}
		}
	})
	sim.Run()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("daemon %d: %v", i, err)
		}
	}
	out, err := d.reduceAtFE()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != n*len(payload) {
		t.Fatalf("concat of %d daemons yields %d bytes, want %d", n, len(out), n*len(payload))
	}
	for i, b := range out {
		if b != 0xA5 {
			t.Fatalf("combined payload corrupted at byte %d under flow control", i)
		}
	}
	depths := make([]uint64, n)
	for i, reg := range regs {
		depths[i] = reg.Gauge("coll.queue.depth.max").Load()
	}
	return depths
}

func TestPlaneFlowControlBoundsInteriorDepth(t *testing.T) {
	// Property: with the credit window on, no (link, tag) queue at any
	// rank ever holds more than window chunks, however skewed the subtree
	// drain order — window 0 selects coll.DefaultWindow.
	for _, tc := range []struct{ window, bound int }{
		{1, 1},
		{4, 4},
		{0, coll.DefaultWindow},
	} {
		t.Run(fmt.Sprintf("window%d", tc.bound), func(t *testing.T) {
			depths := runFlowReduce(t, tc.window)
			for rk, dmax := range depths {
				if dmax > uint64(tc.bound) {
					t.Fatalf("rank %d queue depth high-water %d exceeds window %d", rk, dmax, tc.bound)
				}
			}
			// The slow-subtree interior rank must have queued something, or
			// the property holds vacuously.
			if depths[1] == 0 {
				t.Fatal("interior rank 1 never queued a chunk — skew rig broken")
			}
		})
	}
}

func TestPlaneUnboundedWindowShowsStreamDepth(t *testing.T) {
	// Ablation baseline: with flow control off (negative window) the same
	// skewed gather piles O(stream) chunks at the interior rank — the
	// unbounded behavior the window removes.
	depths := runFlowReduce(t, -1)
	var max uint64
	for _, d := range depths {
		if d > max {
			max = d
		}
	}
	if max <= coll.DefaultWindow {
		t.Fatalf("unbounded ablation high-water is %d; expected O(stream) depth above %d",
			max, coll.DefaultWindow)
	}
}

// Package vtime implements a discrete-event virtual-time scheduler on which
// the whole simulated cluster runs.
//
// Simulated activities execute as ordinary goroutines, but every blocking
// operation (sleeping, receiving on a simulated channel) goes through the
// Sim, which tracks how many simulated goroutines are currently runnable.
// When none are runnable the scheduler pops the earliest pending timer,
// advances the virtual clock to it, and fires it — typically waking a
// sleeper or delivering a message. Virtual time therefore advances only
// when the simulation is otherwise quiescent, which makes a "60 second"
// protocol run complete in milliseconds of real time and makes measured
// durations independent of host load.
//
// The invariants that keep this sound:
//
//   - every goroutine participating in the simulation is started with
//     Sim.Go (or is the caller of Sim.Run itself);
//   - simulated goroutines never block on real synchronization primitives
//     while counted as runnable — all blocking goes through Sleep, Chan,
//     Cond or Semaphore from this package.
package vtime

import (
	"container/heap"
	"fmt"
	"sync"
	"time"
)

// Sim is a discrete-event virtual-time scheduler. The zero value is not
// usable; call New.
type Sim struct {
	mu       sync.Mutex
	schedule sync.Cond // signalled when runnable drops to zero
	now      time.Duration
	runnable int // simulated goroutines currently executing
	timers   timerHeap
	seq      uint64            // tie-break for deterministic ordering of equal timestamps
	stopped  bool              // Run has returned; subsequent blocking ops abort
	live     int               // simulated goroutines that have started and not finished
	peakLive int               // high-water mark of live
	parked   map[uint64]func() // wake funcs of blocked goroutines, for teardown
	parkSeq  uint64
	panicked any
	spawnObs func(name string) // test hook: observes every Go() by name
}

// New returns a fresh simulation with the clock at zero.
func New() *Sim {
	s := &Sim{parked: make(map[uint64]func())}
	s.schedule.L = &s.mu
	return s
}

// Now returns the current virtual time.
func (s *Sim) Now() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// Live returns the number of simulated goroutines currently alive (started
// via Go and not yet finished). It is the simulator's real footprint: each
// live goroutine costs a host stack whether running or parked.
func (s *Sim) Live() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.live
}

// PeakLive returns the high-water mark of Live over the simulation so far —
// the number that sizes the host RSS a run needs.
func (s *Sim) PeakLive() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.peakLive
}

// SetSpawnObserver installs a test hook invoked (with s.mu held, so it must
// not call back into the Sim) for every Sim.Go with the goroutine's name.
// Pass nil to remove it.
func (s *Sim) SetSpawnObserver(fn func(name string)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.spawnObs = fn
}

// timer is a scheduled callback.
type timer struct {
	at        time.Duration
	seq       uint64
	fn        func()
	cancelled *bool // non-nil for cancellable timers
}

type timerHeap []timer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *timerHeap) Push(x any)   { *h = append(*h, x.(timer)) }
func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// After schedules fn to run at now+d. fn executes on the scheduler
// goroutine and must not block; it typically wakes a parked goroutine or
// enqueues a message. d < 0 is treated as 0.
func (s *Sim) After(d time.Duration, fn func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.afterLocked(d, fn)
}

func (s *Sim) afterLocked(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	s.seq++
	heap.Push(&s.timers, timer{at: s.now + d, seq: s.seq, fn: fn})
}

// afterCancellableLocked schedules fn like afterLocked but returns a cancel
// func. A cancelled timer is discarded without firing and without advancing
// the virtual clock. The cancel func must be called with s.mu held.
func (s *Sim) afterCancellableLocked(d time.Duration, fn func()) (cancel func()) {
	if d < 0 {
		d = 0
	}
	s.seq++
	c := new(bool)
	heap.Push(&s.timers, timer{at: s.now + d, seq: s.seq, fn: fn, cancelled: c})
	return func() { *c = true }
}

// Go starts fn as a simulated goroutine. The name is used in panic
// diagnostics only. Go may be called before Run or from inside any
// simulated goroutine.
func (s *Sim) Go(name string, fn func()) {
	s.mu.Lock()
	s.runnable++
	s.live++
	if s.live > s.peakLive {
		s.peakLive = s.live
	}
	if s.spawnObs != nil {
		s.spawnObs(name)
	}
	s.mu.Unlock()
	go func() {
		defer func() {
			if r := recover(); r != nil {
				s.mu.Lock()
				if s.panicked == nil {
					s.panicked = fmt.Sprintf("vtime goroutine %q panicked: %v", name, r)
				}
				s.mu.Unlock()
			}
			s.mu.Lock()
			s.runnable--
			s.live--
			if s.runnable == 0 {
				s.schedule.Signal()
			}
			s.mu.Unlock()
		}()
		fn()
	}()
}

// parker represents one parked (blocked) simulated goroutine. Its wake
// method is idempotent and must be called with s.mu held; fired reports
// whether the parker has already been woken (so queued stale parkers can
// be skipped by wakeup dispatchers).
type parker struct {
	s     *Sim
	ch    chan bool
	fired bool
	id    uint64
}

// wake unparks the goroutine. Caller must hold s.mu. Idempotent.
func (p *parker) wake() {
	if p.fired {
		return
	}
	p.fired = true
	delete(p.s.parked, p.id)
	p.s.runnable++
	p.ch <- true
}

// abort unparks the goroutine with a teardown signal. Caller must hold s.mu.
func (p *parker) abort() {
	if p.fired {
		return
	}
	p.fired = true
	delete(p.s.parked, p.id)
	p.s.runnable++
	p.ch <- false
}

// wait blocks until wake or abort; it releases and reacquires s.mu and
// returns false on teardown.
func (p *parker) wait() bool {
	p.s.mu.Unlock()
	ok := <-p.ch
	p.s.mu.Lock()
	return ok
}

// park marks the calling simulated goroutine blocked and returns a parker
// to wait on. The caller must hold s.mu. If the simulation is already torn
// down, the returned parker's wait returns false immediately.
func (s *Sim) park() *parker {
	p := &parker{s: s, ch: make(chan bool, 1), id: s.parkSeq}
	s.parkSeq++
	if s.stopped {
		p.fired = true
		p.ch <- false
		return p
	}
	s.parked[p.id] = p.abort
	s.runnable--
	if s.runnable == 0 {
		s.schedule.Signal()
	}
	return p
}

// Sleep blocks the calling simulated goroutine for d of virtual time.
func (s *Sim) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	p := s.park()
	s.afterLocked(d, func() {
		s.mu.Lock()
		p.wake()
		s.mu.Unlock()
	})
	p.wait()
	s.mu.Unlock()
}

// Run drives the simulation until every simulated goroutine has either
// finished or parked with no pending timers, then tears down any still
// parked goroutines (their blocking calls return "closed"/false) and
// returns the final virtual time. Run panics if a simulated goroutine
// panicked.
func (s *Sim) Run() time.Duration {
	s.mu.Lock()
	for {
		for s.runnable > 0 {
			s.schedule.Wait()
		}
		if s.panicked != nil {
			p := s.panicked
			s.mu.Unlock()
			panic(p)
		}
		for len(s.timers) > 0 && s.timers[0].cancelled != nil && *s.timers[0].cancelled {
			heap.Pop(&s.timers)
		}
		if len(s.timers) == 0 {
			break
		}
		t := heap.Pop(&s.timers).(timer)
		if t.at > s.now {
			s.now = t.at
		}
		// Fire on the scheduler goroutine. Callbacks take s.mu themselves.
		s.mu.Unlock()
		t.fn()
		s.mu.Lock()
	}
	// Quiescent: no timers, nothing runnable. Abort parked goroutines so
	// their goroutines can exit and tests do not leak.
	s.stopped = true
	aborts := make([]func(), 0, len(s.parked))
	for _, a := range s.parked {
		aborts = append(aborts, a)
	}
	s.parked = map[uint64]func(){}
	for _, a := range aborts {
		a()
	}
	for s.live > 0 {
		for s.runnable > 0 {
			s.schedule.Wait()
		}
		if s.live == 0 {
			break
		}
		// A torn-down goroutine became runnable and may spawn nothing new;
		// also drain any timers it scheduled during teardown.
		if len(s.timers) > 0 {
			t := heap.Pop(&s.timers).(timer)
			if t.at > s.now {
				s.now = t.at
			}
			s.mu.Unlock()
			t.fn()
			s.mu.Lock()
		}
	}
	if s.panicked != nil {
		p := s.panicked
		s.mu.Unlock()
		panic(p)
	}
	end := s.now
	s.mu.Unlock()
	return end
}

// Stopped reports whether Run has completed and the simulation is torn down.
func (s *Sim) Stopped() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stopped
}

package vtime

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestSleepAdvancesClock(t *testing.T) {
	s := New()
	var woke time.Duration
	s.Go("sleeper", func() {
		s.Sleep(5 * time.Second)
		woke = s.Now()
	})
	end := s.Run()
	if woke != 5*time.Second {
		t.Errorf("woke at %v, want 5s", woke)
	}
	if end != 5*time.Second {
		t.Errorf("Run returned %v, want 5s", end)
	}
}

func TestSleepZeroAndNegative(t *testing.T) {
	s := New()
	s.Go("z", func() {
		s.Sleep(0)
		s.Sleep(-time.Second)
	})
	if end := s.Run(); end != 0 {
		t.Errorf("clock moved to %v for zero sleeps", end)
	}
}

func TestTimersFireInOrder(t *testing.T) {
	s := New()
	var order []int
	s.After(3*time.Second, func() { order = append(order, 3) })
	s.After(1*time.Second, func() { order = append(order, 1) })
	s.After(2*time.Second, func() { order = append(order, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestEqualTimestampsFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.After(time.Second, func() { order = append(order, i) })
	}
	s.Run()
	for i := 0; i < 10; i++ {
		if order[i] != i {
			t.Fatalf("same-timestamp events not FIFO: %v", order)
		}
	}
}

func TestManySleepersInterleave(t *testing.T) {
	s := New()
	var mu sync.Mutex
	wakes := map[int]time.Duration{}
	for i := 1; i <= 50; i++ {
		i := i
		s.Go("g", func() {
			s.Sleep(time.Duration(i) * time.Millisecond)
			mu.Lock()
			wakes[i] = s.Now()
			mu.Unlock()
		})
	}
	s.Run()
	for i := 1; i <= 50; i++ {
		if wakes[i] != time.Duration(i)*time.Millisecond {
			t.Fatalf("sleeper %d woke at %v", i, wakes[i])
		}
	}
}

func TestChanSendRecv(t *testing.T) {
	s := New()
	c := NewChan[int](s)
	var got []int
	s.Go("recv", func() {
		for i := 0; i < 3; i++ {
			v, ok := c.Recv()
			if !ok {
				t.Error("Recv returned !ok")
				return
			}
			got = append(got, v)
		}
	})
	s.Go("send", func() {
		s.Sleep(time.Millisecond)
		c.Send(1)
		c.Send(2)
		s.Sleep(time.Millisecond)
		c.Send(3)
	})
	s.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("got %v", got)
	}
}

func TestChanCloseWakesReceivers(t *testing.T) {
	s := New()
	c := NewChan[int](s)
	oks := make([]bool, 3)
	for i := 0; i < 3; i++ {
		i := i
		s.Go("r", func() {
			_, ok := c.Recv()
			oks[i] = ok
		})
	}
	s.Go("closer", func() {
		s.Sleep(time.Second)
		c.Close()
	})
	s.Run()
	for i, ok := range oks {
		if ok {
			t.Errorf("receiver %d got ok=true on closed empty chan", i)
		}
	}
}

func TestChanCloseDrainsPending(t *testing.T) {
	s := New()
	c := NewChan[int](s)
	c.Send(7)
	c.Close()
	var v int
	var ok bool
	s.Go("r", func() { v, ok = c.Recv() })
	s.Run()
	if !ok || v != 7 {
		t.Fatalf("got (%d,%v), want (7,true)", v, ok)
	}
}

func TestChanSendAfterCloseDropped(t *testing.T) {
	s := New()
	c := NewChan[int](s)
	c.Close()
	c.Send(1)
	if c.Len() != 0 {
		t.Fatal("send after close enqueued a value")
	}
}

func TestRecvTimeout(t *testing.T) {
	s := New()
	c := NewChan[int](s)
	var timedOut bool
	var at time.Duration
	s.Go("r", func() {
		_, _, timedOut = c.RecvTimeout(3 * time.Second)
		at = s.Now()
	})
	s.Run()
	if !timedOut {
		t.Fatal("expected timeout")
	}
	if at != 3*time.Second {
		t.Fatalf("timed out at %v, want 3s", at)
	}
}

func TestRecvTimeoutValueBeforeDeadline(t *testing.T) {
	s := New()
	c := NewChan[int](s)
	var v int
	var ok, timedOut bool
	s.Go("r", func() { v, ok, timedOut = c.RecvTimeout(time.Hour) })
	s.Go("w", func() {
		s.Sleep(time.Second)
		c.Send(42)
	})
	end := s.Run()
	if !ok || timedOut || v != 42 {
		t.Fatalf("got v=%d ok=%v timedOut=%v", v, ok, timedOut)
	}
	if end != time.Second {
		t.Fatalf("sim ended at %v; stale timeout timer should not extend measured time beyond it firing", end)
	}
}

func TestTryRecv(t *testing.T) {
	s := New()
	c := NewChan[string](s)
	if _, ok := c.TryRecv(); ok {
		t.Fatal("TryRecv on empty chan returned ok")
	}
	c.Send("x")
	v, ok := c.TryRecv()
	if !ok || v != "x" {
		t.Fatalf("got (%q,%v)", v, ok)
	}
}

func TestRunTearsDownParkedGoroutines(t *testing.T) {
	s := New()
	c := NewChan[int](s)
	returned := false
	s.Go("blocked-forever", func() {
		_, ok := c.Recv()
		if ok {
			t.Error("torn-down Recv returned ok=true")
		}
		returned = true
	})
	s.Run()
	if !returned {
		t.Fatal("parked goroutine did not return after Run")
	}
	if !s.Stopped() {
		t.Fatal("Stopped() false after Run")
	}
}

func TestWaitGroup(t *testing.T) {
	s := New()
	wg := NewWaitGroup(s)
	wg.Add(3)
	var doneAt time.Duration
	s.Go("waiter", func() {
		wg.Wait()
		doneAt = s.Now()
	})
	for i := 1; i <= 3; i++ {
		i := i
		s.Go("worker", func() {
			s.Sleep(time.Duration(i) * time.Second)
			wg.Done()
		})
	}
	s.Run()
	if doneAt != 3*time.Second {
		t.Fatalf("waiter released at %v, want 3s", doneAt)
	}
}

func TestWaitGroupAlreadyZero(t *testing.T) {
	s := New()
	wg := NewWaitGroup(s)
	ok := false
	s.Go("w", func() { wg.Wait(); ok = true })
	s.Run()
	if !ok {
		t.Fatal("Wait on zero counter blocked")
	}
}

func TestGoroutinePanicPropagates(t *testing.T) {
	s := New()
	s.Go("bad", func() { panic("boom") })
	defer func() {
		if recover() == nil {
			t.Fatal("Run did not propagate goroutine panic")
		}
	}()
	s.Run()
}

func TestNestedGo(t *testing.T) {
	s := New()
	var hits int
	var mu sync.Mutex
	s.Go("parent", func() {
		for i := 0; i < 5; i++ {
			s.Go("child", func() {
				s.Sleep(time.Millisecond)
				mu.Lock()
				hits++
				mu.Unlock()
			})
		}
	})
	s.Run()
	if hits != 5 {
		t.Fatalf("hits = %d, want 5", hits)
	}
}

// Property: for any set of sleep durations, every sleeper wakes exactly at
// its requested virtual time and the final clock equals the max duration.
func TestPropertySleepExactness(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 64 {
			raw = raw[:64]
		}
		s := New()
		var mu sync.Mutex
		wakes := make([]time.Duration, len(raw))
		var max time.Duration
		for i, r := range raw {
			d := time.Duration(r) * time.Microsecond
			if d > max {
				max = d
			}
			i := i
			s.Go("p", func() {
				s.Sleep(d)
				mu.Lock()
				wakes[i] = s.Now()
				mu.Unlock()
			})
		}
		end := s.Run()
		if end != max {
			return false
		}
		for i, r := range raw {
			want := time.Duration(r) * time.Microsecond
			if wakes[i] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: Chan preserves FIFO order for a single sender/receiver pair
// regardless of interleaved sleeps.
func TestPropertyChanFIFO(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		cnt := int(n%50) + 1
		rng := rand.New(rand.NewSource(seed))
		s := New()
		c := NewChan[int](s)
		var got []int
		s.Go("recv", func() {
			for i := 0; i < cnt; i++ {
				v, ok := c.Recv()
				if !ok {
					return
				}
				got = append(got, v)
			}
		})
		delays := make([]time.Duration, cnt)
		for i := range delays {
			delays[i] = time.Duration(rng.Intn(1000)) * time.Microsecond
		}
		s.Go("send", func() {
			for i := 0; i < cnt; i++ {
				s.Sleep(delays[i])
				c.Send(i)
			}
		})
		s.Run()
		if len(got) != cnt {
			return false
		}
		return sort.IntsAreSorted(got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Determinism: the same program yields the same final clock on every run.
func TestDeterministicEndTime(t *testing.T) {
	run := func() time.Duration {
		s := New()
		c := NewChan[int](s)
		for i := 0; i < 20; i++ {
			i := i
			s.Go("w", func() {
				s.Sleep(time.Duration(i*7%13) * time.Millisecond)
				c.Send(i)
			})
		}
		s.Go("r", func() {
			for i := 0; i < 20; i++ {
				c.Recv()
				s.Sleep(time.Millisecond)
			}
		})
		return s.Run()
	}
	first := run()
	for i := 0; i < 5; i++ {
		if got := run(); got != first {
			t.Fatalf("run %d ended at %v, first ended at %v", i, got, first)
		}
	}
}

package vtime

import "time"

// Chan is an unbounded FIFO message queue with virtual-time blocking
// receive semantics. Sends never block (the queue is unbounded, matching
// kernel socket buffers in the simulated network). The zero value is not
// usable; call NewChan.
type Chan[T any] struct {
	s      *Sim
	q      []T
	wakers []*parker // parked receivers, FIFO (stale fired entries skipped)
	closed bool
}

// NewChan returns an empty open channel bound to s.
func NewChan[T any](s *Sim) *Chan[T] {
	return &Chan[T]{s: s}
}

// Send enqueues v and wakes one blocked receiver, if any. Send on a closed
// channel is a no-op (the value is dropped), mirroring delivery to a closed
// socket rather than panicking.
func (c *Chan[T]) Send(v T) {
	c.s.mu.Lock()
	defer c.s.mu.Unlock()
	if c.closed {
		return
	}
	c.q = append(c.q, v)
	c.wakeOneLocked()
}

func (c *Chan[T]) wakeOneLocked() {
	for len(c.wakers) > 0 {
		w := c.wakers[0]
		c.wakers = c.wakers[1:]
		if !w.fired {
			w.wake()
			return
		}
	}
}

// Close marks the channel closed and wakes all blocked receivers. Pending
// queued values remain receivable.
func (c *Chan[T]) Close() {
	c.s.mu.Lock()
	defer c.s.mu.Unlock()
	if c.closed {
		return
	}
	c.closed = true
	for _, w := range c.wakers {
		w.wake()
	}
	c.wakers = nil
}

// Recv blocks in virtual time until a value is available or the channel is
// closed and drained. ok is false when the channel is closed and empty or
// the simulation has been torn down.
func (c *Chan[T]) Recv() (v T, ok bool) {
	c.s.mu.Lock()
	defer c.s.mu.Unlock()
	for {
		if len(c.q) > 0 {
			v = c.q[0]
			c.q = c.q[1:]
			return v, true
		}
		if c.closed || c.s.stopped {
			var zero T
			return zero, false
		}
		p := c.s.park()
		c.wakers = append(c.wakers, p)
		if !p.wait() {
			var zero T
			return zero, false
		}
	}
}

// RecvTimeout is Recv with a virtual-time deadline. timedOut reports the
// deadline expiring before a value arrived; ok follows Recv's contract.
func (c *Chan[T]) RecvTimeout(d time.Duration) (v T, ok, timedOut bool) {
	c.s.mu.Lock()
	defer c.s.mu.Unlock()
	deadline := c.s.now + d
	for {
		if len(c.q) > 0 {
			v = c.q[0]
			c.q = c.q[1:]
			return v, true, false
		}
		if c.closed || c.s.stopped {
			var zero T
			return zero, false, false
		}
		if c.s.now >= deadline {
			var zero T
			return zero, false, true
		}
		p := c.s.park()
		c.wakers = append(c.wakers, p)
		cancel := c.s.afterCancellableLocked(deadline-c.s.now, func() {
			c.s.mu.Lock()
			// Waking a goroutine that was already woken by a Send is a
			// no-op; the parker wake is idempotent.
			p.wake()
			c.s.mu.Unlock()
		})
		ok := p.wait()
		cancel()
		if !ok {
			var zero T
			return zero, false, false
		}
	}
}

// TryRecv receives without blocking. ok is false when no value is queued.
func (c *Chan[T]) TryRecv() (v T, ok bool) {
	c.s.mu.Lock()
	defer c.s.mu.Unlock()
	if len(c.q) == 0 {
		return v, false
	}
	v = c.q[0]
	c.q = c.q[1:]
	return v, true
}

// Len returns the number of queued values.
func (c *Chan[T]) Len() int {
	c.s.mu.Lock()
	defer c.s.mu.Unlock()
	return len(c.q)
}

// Closed reports whether Close has been called.
func (c *Chan[T]) Closed() bool {
	c.s.mu.Lock()
	defer c.s.mu.Unlock()
	return c.closed
}

// WaitGroup is a virtual-time analogue of sync.WaitGroup.
type WaitGroup struct {
	s      *Sim
	n      int
	wakers []*parker
}

// NewWaitGroup returns a WaitGroup bound to s.
func NewWaitGroup(s *Sim) *WaitGroup { return &WaitGroup{s: s} }

// Add adds delta to the counter, waking waiters when it reaches zero.
func (w *WaitGroup) Add(delta int) {
	w.s.mu.Lock()
	defer w.s.mu.Unlock()
	w.n += delta
	if w.n < 0 {
		panic("vtime: negative WaitGroup counter")
	}
	if w.n == 0 {
		for _, wk := range w.wakers {
			wk.wake()
		}
		w.wakers = nil
	}
}

// Done decrements the counter by one.
func (w *WaitGroup) Done() { w.Add(-1) }

// Wait blocks in virtual time until the counter is zero.
func (w *WaitGroup) Wait() {
	w.s.mu.Lock()
	defer w.s.mu.Unlock()
	for w.n > 0 {
		if w.s.stopped {
			return
		}
		p := w.s.park()
		w.wakers = append(w.wakers, p)
		if !p.wait() {
			return
		}
	}
}

package vtime

import "time"

// Chan is an unbounded FIFO message queue with virtual-time blocking
// receive semantics. Sends never block (the queue is unbounded, matching
// kernel socket buffers in the simulated network). The zero value is not
// usable; call NewChan.
type Chan[T any] struct {
	s      *Sim
	q      []T
	wakers []*parker // parked receivers, FIFO (stale fired entries skipped)
	closed bool

	// Handler-mode state (see Handle): instead of parking a receiver
	// goroutine, deliveries run as zero-delay scheduler events.
	handler  func(T, bool)
	hPending bool // a delivery event is scheduled and has not run yet
	hDone    bool // the terminal ok=false callback has been delivered
}

// NewChan returns an empty open channel bound to s.
func NewChan[T any](s *Sim) *Chan[T] {
	return &Chan[T]{s: s}
}

// Send enqueues v and wakes one blocked receiver, if any. Send on a closed
// channel is a no-op (the value is dropped), mirroring delivery to a closed
// socket rather than panicking.
func (c *Chan[T]) Send(v T) {
	c.s.mu.Lock()
	defer c.s.mu.Unlock()
	if c.closed {
		return
	}
	c.q = append(c.q, v)
	if c.handler != nil {
		c.pumpLocked()
		return
	}
	c.wakeOneLocked()
}

// Handle switches the channel to event-driven delivery: each queued and
// future value is delivered by calling fn(v, true) on the vtime scheduler
// goroutine, one value per zero-delay timer, so deliveries keep the
// scheduler's deterministic (time, seq) order without a parked receiver
// goroutine. After Close, once the queue drains, fn is called exactly once
// with ok=false. fn must not block (no Sleep/Recv/Compute): it may inspect
// state, Send on other channels, call Sim.After, or start goroutines.
// Handle may not be mixed with blocking Recv while installed; Unhandle
// returns the channel to blocking mode (and permits a later re-install).
func (c *Chan[T]) Handle(fn func(v T, ok bool)) {
	c.s.mu.Lock()
	defer c.s.mu.Unlock()
	if c.handler != nil {
		panic("vtime: Chan.Handle installed twice")
	}
	if len(c.wakers) > 0 {
		panic("vtime: Chan.Handle with receivers parked on the channel")
	}
	c.handler = fn
	c.pumpLocked()
}

// Unhandle detaches the handler installed by Handle and returns the
// channel to blocking-receive mode. Values not yet delivered stay queued
// for Recv. The natural call site is the handler itself, recognizing the
// last message of the traffic it owns and handing the stream back — a
// framing layer that multiplexes a phase of a connection's life.
// Re-installing a handler later is allowed.
func (c *Chan[T]) Unhandle() {
	c.s.mu.Lock()
	defer c.s.mu.Unlock()
	c.handler = nil
}

// pumpLocked schedules the next handler delivery if one is due and none is
// in flight. Caller must hold s.mu.
func (c *Chan[T]) pumpLocked() {
	if c.handler == nil || c.hPending || c.hDone {
		return
	}
	if len(c.q) == 0 && !c.closed {
		return
	}
	c.hPending = true
	c.s.afterLocked(0, c.deliverOne)
}

// deliverOne runs on the scheduler goroutine: it pops one value (or the
// terminal close) and invokes the handler outside the scheduler lock.
func (c *Chan[T]) deliverOne() {
	c.s.mu.Lock()
	fn := c.handler
	if fn == nil { // Unhandled between scheduling and delivery
		c.hPending = false
		c.s.mu.Unlock()
		return
	}
	if len(c.q) > 0 {
		v := c.q[0]
		c.q = c.q[1:]
		c.s.mu.Unlock()
		fn(v, true)
		c.s.mu.Lock()
		c.hPending = false
		c.pumpLocked()
		c.s.mu.Unlock()
		return
	}
	c.hPending = false
	if c.closed && !c.hDone {
		c.hDone = true
		c.s.mu.Unlock()
		var zero T
		fn(zero, false)
		return
	}
	c.s.mu.Unlock()
}

func (c *Chan[T]) wakeOneLocked() {
	for len(c.wakers) > 0 {
		w := c.wakers[0]
		c.wakers = c.wakers[1:]
		if !w.fired {
			w.wake()
			return
		}
	}
}

// Close marks the channel closed and wakes all blocked receivers. Pending
// queued values remain receivable.
func (c *Chan[T]) Close() {
	c.s.mu.Lock()
	defer c.s.mu.Unlock()
	if c.closed {
		return
	}
	c.closed = true
	for _, w := range c.wakers {
		w.wake()
	}
	c.wakers = nil
	c.pumpLocked()
}

// Recv blocks in virtual time until a value is available or the channel is
// closed and drained. ok is false when the channel is closed and empty or
// the simulation has been torn down.
func (c *Chan[T]) Recv() (v T, ok bool) {
	c.s.mu.Lock()
	defer c.s.mu.Unlock()
	if c.handler != nil {
		panic("vtime: Recv on a handled Chan")
	}
	for {
		if len(c.q) > 0 {
			v = c.q[0]
			c.q = c.q[1:]
			return v, true
		}
		if c.closed || c.s.stopped {
			var zero T
			return zero, false
		}
		p := c.s.park()
		c.wakers = append(c.wakers, p)
		if !p.wait() {
			var zero T
			return zero, false
		}
	}
}

// RecvTimeout is Recv with a virtual-time deadline. timedOut reports the
// deadline expiring before a value arrived; ok follows Recv's contract.
func (c *Chan[T]) RecvTimeout(d time.Duration) (v T, ok, timedOut bool) {
	c.s.mu.Lock()
	defer c.s.mu.Unlock()
	if c.handler != nil {
		panic("vtime: RecvTimeout on a handled Chan")
	}
	deadline := c.s.now + d
	for {
		if len(c.q) > 0 {
			v = c.q[0]
			c.q = c.q[1:]
			return v, true, false
		}
		if c.closed || c.s.stopped {
			var zero T
			return zero, false, false
		}
		if c.s.now >= deadline {
			var zero T
			return zero, false, true
		}
		p := c.s.park()
		c.wakers = append(c.wakers, p)
		cancel := c.s.afterCancellableLocked(deadline-c.s.now, func() {
			c.s.mu.Lock()
			// Waking a goroutine that was already woken by a Send is a
			// no-op; the parker wake is idempotent.
			p.wake()
			c.s.mu.Unlock()
		})
		ok := p.wait()
		cancel()
		if !ok {
			var zero T
			return zero, false, false
		}
	}
}

// TryRecv receives without blocking. ok is false when no value is queued.
func (c *Chan[T]) TryRecv() (v T, ok bool) {
	c.s.mu.Lock()
	defer c.s.mu.Unlock()
	if len(c.q) == 0 {
		return v, false
	}
	v = c.q[0]
	c.q = c.q[1:]
	return v, true
}

// Len returns the number of queued values.
func (c *Chan[T]) Len() int {
	c.s.mu.Lock()
	defer c.s.mu.Unlock()
	return len(c.q)
}

// Closed reports whether Close has been called.
func (c *Chan[T]) Closed() bool {
	c.s.mu.Lock()
	defer c.s.mu.Unlock()
	return c.closed
}

// WaitGroup is a virtual-time analogue of sync.WaitGroup.
type WaitGroup struct {
	s      *Sim
	n      int
	wakers []*parker
}

// NewWaitGroup returns a WaitGroup bound to s.
func NewWaitGroup(s *Sim) *WaitGroup { return &WaitGroup{s: s} }

// Add adds delta to the counter, waking waiters when it reaches zero.
func (w *WaitGroup) Add(delta int) {
	w.s.mu.Lock()
	defer w.s.mu.Unlock()
	w.n += delta
	if w.n < 0 {
		panic("vtime: negative WaitGroup counter")
	}
	if w.n == 0 {
		for _, wk := range w.wakers {
			wk.wake()
		}
		w.wakers = nil
	}
}

// Done decrements the counter by one.
func (w *WaitGroup) Done() { w.Add(-1) }

// Wait blocks in virtual time until the counter is zero.
func (w *WaitGroup) Wait() {
	w.s.mu.Lock()
	defer w.s.mu.Unlock()
	for w.n > 0 {
		if w.s.stopped {
			return
		}
		p := w.s.park()
		w.wakers = append(w.wakers, p)
		if !p.wait() {
			return
		}
	}
}

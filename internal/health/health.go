// Package health is LaunchMON's failure-detection subsystem: a heartbeat
// fabric running over the same k-ary tree topology as the ICCL daemon tree
// (internal/iccl), detecting daemon and node loss at 10^4-node scale and
// propagating failure reports to the tree root (the master back-end
// daemon), which forwards them to the front end as LMONP status events.
//
// Two detection paths exist:
//
//   - connection sever: a killed node's connections return
//     simnet.ErrPeerDead once in-flight data drains, so the parent learns
//     of the loss within one link latency (fail-stop, fast path); and
//   - heartbeat miss: a silent failure (dropped link, wedged daemon)
//     surfaces when a child misses Miss consecutive periods, bounded by
//     Period x Miss (slow path).
//
// Either way the parent declares the child's entire subtree unreachable
// (descendants cannot report through a dead interior node) and sends one
// report per lost rank toward the root. All waiting, sending and per-message
// processing is charged in virtual time, so detection latency and heartbeat
// overhead are measurable quantities (see internal/bench).
package health

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"launchmon/internal/cluster"
	"launchmon/internal/iccl"
	"launchmon/internal/lmonp"
	"launchmon/internal/obs"
	"launchmon/internal/simnet"
	"launchmon/internal/vtime"
)

// Heartbeat-tree opcodes.
const (
	hbJoin = 1 // child → parent: rank announcement
	hbBeat = 2 // child → parent: heartbeat
	hbDead = 3 // child → parent: failure report batch
)

// Config describes one daemon's place in the heartbeat tree. Rank, Size,
// Fanout and Nodelist mirror the daemon's iccl.Config — the heartbeat tree
// has the same shape as the ICCL tree, on its own port.
type Config struct {
	Rank     int
	Size     int
	Fanout   int // 0 = flat (everyone under rank 0)
	Nodelist []string
	Port     int

	// Period is the interval between heartbeats (default 500ms).
	Period time.Duration
	// Miss is how many consecutive periods a child may miss before it is
	// declared dead (default 3).
	Miss int
	// PerMsgCost is the CPU charge for handling one tree message
	// (default 20us — heartbeats are cheap compared to collectives).
	PerMsgCost time.Duration
	// DialRetry and DialAttempts bound the child→parent connect loop.
	DialRetry    time.Duration
	DialAttempts int

	// Metrics receives heartbeat-plane counters (health.beats.sent,
	// health.timeouts, health.reports) when set; nil disables
	// instrumentation at zero cost.
	Metrics *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.Fanout <= 0 {
		c.Fanout = c.Size
	}
	if c.Period == 0 {
		c.Period = 500 * time.Millisecond
	}
	if c.Miss == 0 {
		c.Miss = 3
	}
	if c.PerMsgCost == 0 {
		c.PerMsgCost = 20 * time.Microsecond
	}
	if c.DialRetry == 0 {
		c.DialRetry = 5 * time.Millisecond
	}
	if c.DialAttempts == 0 {
		c.DialAttempts = 2000
	}
	return c
}

// Deadline returns the worst-case detection bound of the configuration:
// a failure is reported within Miss+1 periods (the extra period covers
// checker phase alignment).
func (c Config) Deadline() time.Duration {
	cfg := c.withDefaults()
	return time.Duration(cfg.Miss+1) * cfg.Period
}

// Report is one detected daemon loss, delivered at the tree root.
type Report struct {
	Rank   int    // lost daemon's rank
	Detail string // "connection severed", "heartbeat timeout", "unreachable"
}

// ErrMonitor wraps heartbeat-tree bootstrap failures.
var ErrMonitor = errors.New("health: monitor bootstrap failed")

// Monitor is one daemon's view of the heartbeat tree.
type Monitor struct {
	p   *cluster.Proc
	cfg Config

	listener *simnet.Listener
	parent   *simnet.Conn

	failures *vtime.Chan[Report] // root only; nil elsewhere

	plink *iccl.Link // links mode: shared parent link (nil at root / dial mode)

	// mu guards the fields below and serializes parent writes (simnet
	// writes return immediately; virtual time is charged on delivery).
	mu       sync.Mutex
	children map[int]*simnet.Conn
	lastBeat map[int]time.Duration // direct child rank → last heard (virtual)
	reported map[int]bool          // ranks already declared dead
	stopped  bool

	// Metric handles (nil = obs off; methods on nil handles no-op).
	beatsSent, timeouts, reportsUp *obs.Counter
}

// bindMetrics interns the monitor's counter handles from cfg.Metrics.
func (m *Monitor) bindMetrics() {
	reg := m.cfg.Metrics
	m.beatsSent = reg.Counter("health.beats.sent")
	m.timeouts = reg.Counter("health.timeouts")
	m.reportsUp = reg.Counter("health.reports")
}

// Start joins the calling daemon into the session's heartbeat tree and
// begins monitoring. Children dial their parent with retries; Start
// returns once the daemon's own links are up (it does not wait for the
// whole subtree — detection of children that never join falls out of the
// heartbeat-miss path). Call Stop to leave the tree; stopping the root
// cascades an EOF teardown wave down the whole tree.
func Start(p *cluster.Proc, cfg Config) (*Monitor, error) {
	cfg = cfg.withDefaults()
	if cfg.Size <= 0 || cfg.Rank < 0 || cfg.Rank >= cfg.Size {
		return nil, fmt.Errorf("%w: bad rank/size %d/%d", ErrMonitor, cfg.Rank, cfg.Size)
	}
	if len(cfg.Nodelist) != cfg.Size {
		return nil, fmt.Errorf("%w: nodelist has %d entries for size %d", ErrMonitor, len(cfg.Nodelist), cfg.Size)
	}
	m := &Monitor{
		p:        p,
		cfg:      cfg,
		children: make(map[int]*simnet.Conn),
		lastBeat: make(map[int]time.Duration),
		reported: make(map[int]bool),
	}
	m.bindMetrics()
	if cfg.Rank == 0 {
		m.failures = vtime.NewChan[Report](p.Sim())
	}
	kids := iccl.Children(cfg.Rank, cfg.Size, cfg.Fanout)

	if len(kids) > 0 {
		l, err := p.Host().Listen(cfg.Port)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrMonitor, err)
		}
		m.listener = l
		now := p.Sim().Now()
		for _, k := range kids {
			m.lastBeat[k] = now
		}
		p.Sim().Go(fmt.Sprintf("health-accept-%d", cfg.Rank), m.acceptLoop)
		p.Sim().Go(fmt.Sprintf("health-check-%d", cfg.Rank), m.checkLoop)
	}

	if cfg.Rank > 0 {
		parentRank := iccl.Parent(cfg.Rank, cfg.Fanout)
		addr := simnet.Addr{Host: cfg.Nodelist[parentRank], Port: cfg.Port}
		var conn *simnet.Conn
		var err error
		for attempt := 0; attempt < cfg.DialAttempts; attempt++ {
			conn, err = p.Host().Dial(addr)
			if err == nil {
				break
			}
			p.Sim().Sleep(cfg.DialRetry)
		}
		if err != nil {
			m.Stop()
			return nil, fmt.Errorf("%w: dialing parent %d: %v", ErrMonitor, parentRank, err)
		}
		m.parent = conn
		join := lmonp.AppendUint32(nil, hbJoin)
		join = lmonp.AppendUint32(join, uint32(cfg.Rank))
		if err := lmonp.WriteFrame(conn, join); err != nil {
			m.Stop()
			return nil, fmt.Errorf("%w: join: %v", ErrMonitor, err)
		}
		p.Sim().Go(fmt.Sprintf("health-beat-%d", cfg.Rank), m.beatLoop)
		p.Sim().Go(fmt.Sprintf("health-parent-%d", cfg.Rank), m.parentWatch)
	}
	return m, nil
}

// StartOnLinks starts the monitor in link-reuse mode: instead of
// listening and dialing a second tree (one extra connection pair per
// daemon), heartbeats piggyback on the established ICCL tree links
// (iccl.Comm.ShareLinks), halving per-session connection count. parent
// must be nil exactly at rank 0; children are the shared links of this
// daemon's connected ICCL children. Both detection paths survive the
// move: a severed node closes the mux queues (fast path), and silent
// failures still surface via heartbeat misses. Stop in this mode leaves
// the shared connections alone — they belong to the collective plane —
// so teardown is per-daemon (core stops each monitor at session close)
// rather than a root-initiated close cascade.
func StartOnLinks(p *cluster.Proc, cfg Config, parent *iccl.Link, children []*iccl.Link) (*Monitor, error) {
	cfg = cfg.withDefaults()
	if cfg.Size <= 0 || cfg.Rank < 0 || cfg.Rank >= cfg.Size {
		return nil, fmt.Errorf("%w: bad rank/size %d/%d", ErrMonitor, cfg.Rank, cfg.Size)
	}
	if (cfg.Rank == 0) != (parent == nil) {
		return nil, fmt.Errorf("%w: parent link must be nil at rank 0 only (rank %d)", ErrMonitor, cfg.Rank)
	}
	m := &Monitor{
		p:        p,
		cfg:      cfg,
		plink:    parent,
		children: make(map[int]*simnet.Conn),
		lastBeat: make(map[int]time.Duration),
		reported: make(map[int]bool),
	}
	m.bindMetrics()
	if cfg.Rank == 0 {
		m.failures = vtime.NewChan[Report](p.Sim())
	}
	if len(children) > 0 {
		now := p.Sim().Now()
		for _, lk := range children {
			m.lastBeat[lk.Rank] = now
		}
		for _, lk := range children {
			lk := lk
			p.Sim().Go(fmt.Sprintf("health-link-reader-%d-%d", cfg.Rank, lk.Rank), func() { m.linkReader(lk) })
		}
		p.Sim().Go(fmt.Sprintf("health-check-%d", cfg.Rank), m.checkLoop)
	}
	if parent != nil {
		p.Sim().Go(fmt.Sprintf("health-beat-%d", cfg.Rank), m.beatLoop)
		p.Sim().Go(fmt.Sprintf("health-parent-%d", cfg.Rank), func() {
			// Parents never send heartbeats downward; the queue closing
			// means the parent's node (or the session) went away.
			_, _ = parent.Recv.Recv()
			m.Stop()
		})
	}
	return m, nil
}

// linkReader consumes one shared child link's heartbeat queue. The queue
// closing means the ICCL mux saw the connection fail — the child's whole
// subtree is unreachable, exactly like a severed dial-mode conn.
func (m *Monitor) linkReader(lk *iccl.Link) {
	for {
		payload, ok := lk.Recv.Recv()
		if !ok {
			if !m.halted() {
				m.declareSubtreeDead(lk.Rank, "connection severed")
			}
			return
		}
		if m.halted() {
			// Can't close a shared conn (the collective plane owns it);
			// just stop consuming.
			return
		}
		m.p.Compute(m.cfg.PerMsgCost)
		rd := lmonp.NewReader(payload)
		op, _ := rd.Uint32()
		switch op {
		case hbBeat:
			m.mu.Lock()
			m.lastBeat[lk.Rank] = m.p.Sim().Now()
			m.mu.Unlock()
		case hbDead:
			if reports, err := decodeReports(rd); err == nil {
				m.propagate(reports)
			}
		}
	}
}

// Failures returns the root's failure-report stream (nil off-root). The
// channel closes when the monitor stops.
func (m *Monitor) Failures() *vtime.Chan[Report] { return m.failures }

// Rank returns the monitor's tree rank.
func (m *Monitor) Rank() int { return m.cfg.Rank }

// Config returns the effective configuration (defaults applied).
func (m *Monitor) Config() Config { return m.cfg }

// Stop leaves the heartbeat tree: the listener and all links close, the
// periodic loops wind down, and (at the root) the failure stream closes.
// Children observe the closed parent link and stop too, cascading the
// teardown down the tree. Idempotent.
func (m *Monitor) Stop() {
	m.mu.Lock()
	if m.stopped {
		m.mu.Unlock()
		return
	}
	m.stopped = true
	children := make([]*simnet.Conn, 0, len(m.children))
	for _, c := range m.children {
		children = append(children, c)
	}
	m.mu.Unlock()

	if m.listener != nil {
		m.listener.Close()
	}
	if m.parent != nil {
		m.parent.Close()
	}
	for _, c := range children {
		c.Close()
	}
	if m.failures != nil {
		m.failures.Close()
	}
}

// halted reports whether the monitor stopped or its process exited (a dead
// daemon must not keep virtual-time timers alive).
func (m *Monitor) halted() bool {
	m.mu.Lock()
	stopped := m.stopped
	m.mu.Unlock()
	return stopped || m.p.State() == cluster.StateExited
}

// acceptLoop admits child connections and hands each to a reader.
func (m *Monitor) acceptLoop() {
	for {
		conn, err := m.listener.Accept()
		if err != nil {
			return
		}
		m.p.Sim().Go("health-child-reader", func() { m.childReader(conn) })
	}
}

// childReader consumes one child's frames: the join announcement, then
// heartbeats and failure reports. A read error means the link was severed
// (node killed) — the child's whole subtree is declared unreachable.
func (m *Monitor) childReader(conn *simnet.Conn) {
	frame, err := lmonp.ReadFrame(conn)
	if err != nil {
		conn.Close()
		return
	}
	rd := lmonp.NewReader(frame)
	op, _ := rd.Uint32()
	rk32, err := rd.Uint32()
	if err != nil || op != hbJoin {
		conn.Close()
		return
	}
	rank := int(rk32)
	valid := false
	for _, k := range iccl.Children(m.cfg.Rank, m.cfg.Size, m.cfg.Fanout) {
		if k == rank {
			valid = true
		}
	}
	if !valid {
		conn.Close()
		return
	}
	m.mu.Lock()
	m.children[rank] = conn
	m.lastBeat[rank] = m.p.Sim().Now()
	m.mu.Unlock()

	for {
		frame, err := lmonp.ReadFrame(conn)
		if err != nil {
			if !m.halted() {
				m.declareSubtreeDead(rank, "connection severed")
			}
			return
		}
		if m.halted() {
			// A dead parent closes its child links so the children stop
			// beating (cascade teardown) instead of feeding a corpse.
			conn.Close()
			return
		}
		m.p.Compute(m.cfg.PerMsgCost)
		rd := lmonp.NewReader(frame)
		op, _ := rd.Uint32()
		switch op {
		case hbBeat:
			m.mu.Lock()
			m.lastBeat[rank] = m.p.Sim().Now()
			m.mu.Unlock()
		case hbDead:
			reports, err := decodeReports(rd)
			if err != nil {
				continue
			}
			m.propagate(reports)
		}
	}
}

// beatLoop sends one heartbeat per period to the parent.
func (m *Monitor) beatLoop() {
	beat := lmonp.AppendUint32(nil, hbBeat)
	// Prime immediately so the parent's miss window starts from a beat.
	if err := m.sendUp(beat); err != nil {
		return
	}
	m.beatsSent.Inc()
	for {
		m.p.Sim().Sleep(m.cfg.Period)
		if m.halted() {
			return
		}
		if err := m.sendUp(beat); err != nil {
			return
		}
		m.beatsSent.Inc()
	}
}

// parentWatch blocks on the parent link; when it closes (root stopped, or
// the parent's node died) the local monitor stops, cascading downward.
func (m *Monitor) parentWatch() {
	var buf [1]byte
	_, _ = m.parent.Read(buf[:]) // parents never send; returns on close/sever
	m.Stop()
}

// checkLoop declares children dead when they miss too many heartbeats.
func (m *Monitor) checkLoop() {
	threshold := time.Duration(m.cfg.Miss) * m.cfg.Period
	for {
		m.p.Sim().Sleep(m.cfg.Period)
		if m.halted() {
			return
		}
		now := m.p.Sim().Now()
		var late []int
		m.mu.Lock()
		for rank, last := range m.lastBeat {
			if !m.reported[rank] && now-last > threshold {
				late = append(late, rank)
			}
		}
		m.mu.Unlock()
		for _, rank := range late {
			m.timeouts.Inc()
			m.declareSubtreeDead(rank, "heartbeat timeout")
		}
	}
}

// declareSubtreeDead reports the child rank and all its descendants lost
// (an interior-node failure makes its whole subtree unreachable).
func (m *Monitor) declareSubtreeDead(rank int, detail string) {
	var reports []Report
	for _, r := range iccl.SubtreeRanks(rank, m.cfg.Size, m.cfg.Fanout) {
		d := detail
		if r != rank {
			d = "unreachable"
		}
		reports = append(reports, Report{Rank: r, Detail: d})
	}
	m.propagate(reports)
}

// propagate delivers failure reports: to the failure stream at the root,
// upward to the parent elsewhere. Already-reported ranks are dropped so
// the sever and timeout paths cannot double-report.
func (m *Monitor) propagate(reports []Report) {
	fresh := reports[:0]
	m.mu.Lock()
	for _, r := range reports {
		if m.reported[r.Rank] {
			continue
		}
		m.reported[r.Rank] = true
		fresh = append(fresh, r)
	}
	stopped := m.stopped
	m.mu.Unlock()
	if len(fresh) == 0 || stopped {
		return
	}
	m.reportsUp.Add(uint64(len(fresh)))
	if m.failures != nil {
		for _, r := range fresh {
			m.failures.Send(r)
		}
		return
	}
	frame := lmonp.AppendUint32(nil, hbDead)
	frame = encodeReports(frame, fresh)
	_ = m.sendUp(frame)
}

// sendUp writes one frame to the parent — the dialed conn, or the shared
// ICCL link in link-reuse mode — serialized across the beat, reader and
// checker goroutines.
func (m *Monitor) sendUp(frame []byte) error {
	if m.parent == nil && m.plink == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.stopped {
		return errors.New("health: monitor stopped")
	}
	if m.plink != nil {
		return m.plink.Send(frame)
	}
	return lmonp.WriteFrame(m.parent, frame)
}

func encodeReports(b []byte, reports []Report) []byte {
	b = lmonp.AppendUint32(b, uint32(len(reports)))
	for _, r := range reports {
		b = lmonp.AppendUint32(b, uint32(r.Rank))
		b = lmonp.AppendString(b, r.Detail)
	}
	return b
}

func decodeReports(rd *lmonp.Reader) ([]Report, error) {
	n, err := rd.Uint32()
	if err != nil {
		return nil, err
	}
	out := make([]Report, 0, n)
	for i := uint32(0); i < n; i++ {
		rk, err := rd.Uint32()
		if err != nil {
			return nil, err
		}
		detail, err := rd.String()
		if err != nil {
			return nil, err
		}
		out = append(out, Report{Rank: int(rk), Detail: detail})
	}
	return out, nil
}

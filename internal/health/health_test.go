package health

import (
	"fmt"
	"testing"
	"time"

	"launchmon/internal/cluster"
	"launchmon/internal/vtime"
)

// healthRig boots n "daemon" processes (one per compute node) that each
// join a heartbeat tree, and returns the root's monitor through rootCh.
func healthRig(t *testing.T, n, fanout int, period time.Duration, miss int) (*vtime.Sim, *cluster.Cluster, *vtime.Chan[*Monitor]) {
	t.Helper()
	sim := vtime.New()
	cl, err := cluster.New(sim, cluster.Options{Nodes: n})
	if err != nil {
		t.Fatal(err)
	}
	nodelist := make([]string, n)
	for i := 0; i < n; i++ {
		nodelist[i] = cl.Node(i).Name()
	}
	rootCh := vtime.NewChan[*Monitor](sim)
	for i := 0; i < n; i++ {
		i := i
		if _, err := cl.Node(i).SpawnSystemProc(cluster.Spec{
			Exe: fmt.Sprintf("hd%d", i),
			Main: func(p *cluster.Proc) {
				m, err := Start(p, Config{
					Rank: i, Size: n, Fanout: fanout, Nodelist: nodelist,
					Port: 59000, Period: period, Miss: miss,
				})
				if err != nil {
					t.Errorf("rank %d: %v", i, err)
					return
				}
				if i == 0 {
					rootCh.Send(m)
				}
				// Daemons park here; their monitors do the work. Node death
				// or root teardown ends them.
				vtime.NewChan[int](p.Sim()).Recv()
			},
		}); err != nil {
			t.Fatal(err)
		}
	}
	return sim, cl, rootCh
}

func TestSeveredNodeDetectedFast(t *testing.T) {
	const n = 8
	period := 200 * time.Millisecond
	sim, cl, rootCh := healthRig(t, n, 0, period, 3)
	var report Report
	var latency time.Duration
	sim.Go("driver", func() {
		root, ok := rootCh.Recv()
		if !ok {
			t.Error("no root monitor")
			return
		}
		sim.Sleep(1 * time.Second) // steady state
		killAt := sim.Now()
		cl.KillNode(5)
		r, ok := root.Failures().Recv()
		if !ok {
			t.Error("failure stream closed early")
			return
		}
		report, latency = r, sim.Now()-killAt
		root.Stop()
	})
	sim.Run()
	if report.Rank != 5 {
		t.Errorf("reported rank %d, want 5", report.Rank)
	}
	if report.Detail != "connection severed" {
		t.Errorf("detail %q", report.Detail)
	}
	// Sever detection is the fast path: well under one period.
	if latency > period {
		t.Errorf("detection took %v with period %v", latency, period)
	}
}

func TestSilentLinkDropDetectedWithinDeadline(t *testing.T) {
	const n = 4
	period := 100 * time.Millisecond
	const miss = 3
	sim, cl, rootCh := healthRig(t, n, 0, period, miss)
	var report Report
	var latency time.Duration
	sim.Go("driver", func() {
		root, ok := rootCh.Recv()
		if !ok {
			t.Error("no root monitor")
			return
		}
		sim.Sleep(1 * time.Second)
		dropAt := sim.Now()
		// Rank 2's beats vanish silently; only the miss threshold can see it.
		cl.Net().DropLink(cl.Node(0).Name(), cl.Node(2).Name())
		r, ok := root.Failures().Recv()
		if !ok {
			t.Error("failure stream closed early")
			return
		}
		report, latency = r, sim.Now()-dropAt
		root.Stop()
	})
	sim.Run()
	if report.Rank != 2 {
		t.Errorf("reported rank %d, want 2", report.Rank)
	}
	if report.Detail != "heartbeat timeout" {
		t.Errorf("detail %q", report.Detail)
	}
	deadline := time.Duration(miss+1) * period
	if latency > deadline {
		t.Errorf("silent failure detected after %v, deadline %v", latency, deadline)
	}
	if latency < time.Duration(miss)*period-period {
		t.Errorf("silent failure detected implausibly fast: %v", latency)
	}
}

func TestInteriorDeathReportsSubtreeUnreachable(t *testing.T) {
	// Fanout 2 over 7 ranks: rank 1's subtree is {1, 3, 4}.
	const n = 7
	sim, cl, rootCh := healthRig(t, n, 2, 100*time.Millisecond, 3)
	got := map[int]string{}
	sim.Go("driver", func() {
		root, ok := rootCh.Recv()
		if !ok {
			t.Error("no root monitor")
			return
		}
		sim.Sleep(1 * time.Second)
		cl.KillNode(1)
		for len(got) < 3 {
			r, ok := root.Failures().Recv()
			if !ok {
				t.Error("failure stream closed early")
				return
			}
			got[r.Rank] = r.Detail
		}
		root.Stop()
	})
	sim.Run()
	if got[1] != "connection severed" {
		t.Errorf("rank 1 detail %q", got[1])
	}
	for _, r := range []int{3, 4} {
		if got[r] != "unreachable" {
			t.Errorf("rank %d detail %q, want unreachable", r, got[r])
		}
	}
}

func TestRootStopCascades(t *testing.T) {
	// After the root stops, every monitor winds down and the simulation
	// quiesces — the absence of a hang IS the assertion (beat loops left
	// running would keep virtual time advancing forever).
	const n = 6
	sim, _, rootCh := healthRig(t, n, 2, 100*time.Millisecond, 3)
	sim.Go("driver", func() {
		root, ok := rootCh.Recv()
		if !ok {
			t.Error("no root monitor")
			return
		}
		sim.Sleep(500 * time.Millisecond)
		root.Stop()
	})
	end := sim.Run()
	if end > time.Hour {
		t.Errorf("simulation ran to %v; teardown did not cascade", end)
	}
}

func TestEventCodecRoundTrip(t *testing.T) {
	for _, ev := range []Event{
		{Kind: EvDaemonsSpawned, Rank: -1, Detail: ""},
		{Kind: EvJobExited, Rank: -1, Code: 137, Detail: "killed"},
		{Kind: EvDaemonExited, Rank: 42, Detail: "connection severed"},
		{Kind: EvSessionTornDown, Rank: -1, Detail: "watchdog"},
	} {
		got, err := DecodeEvent(EncodeEvent(ev))
		if err != nil {
			t.Fatalf("%v: %v", ev, err)
		}
		if got != ev {
			t.Errorf("round trip: got %+v want %+v", got, ev)
		}
	}
	if _, err := DecodeEvent([]byte{1, 2}); err == nil {
		t.Error("truncated event decoded")
	}
}

package health

import (
	"fmt"

	"launchmon/internal/lmonp"
)

// EventKind classifies session status events, mirroring the state
// transitions real LaunchMON reports through lmon_fe_regStatusCB.
type EventKind uint32

// Session status-event kinds.
const (
	// EvDaemonsSpawned: the session's daemons are up and the session is
	// usable (fires once, right after launch/attach completes).
	EvDaemonsSpawned EventKind = iota + 1
	// EvJobExited: the target job's launcher exited; Code holds its exit
	// status.
	EvJobExited
	// EvDaemonExited: a back-end daemon (or its node) was lost; Rank names
	// it.
	EvDaemonExited
	// EvSessionTornDown: the session finished tearing down (detach, kill
	// or watchdog); no further events follow.
	EvSessionTornDown
)

// String names the kind for diagnostics.
func (k EventKind) String() string {
	switch k {
	case EvDaemonsSpawned:
		return "daemons-spawned"
	case EvJobExited:
		return "job-exited"
	case EvDaemonExited:
		return "daemon-exited"
	case EvSessionTornDown:
		return "session-torn-down"
	default:
		return fmt.Sprintf("event(%d)", uint32(k))
	}
}

// Event is one session status transition, delivered to registered
// front-end callbacks and carried between components as LMONP
// TypeStatusEvent messages.
type Event struct {
	Kind   EventKind
	Rank   int    // EvDaemonExited: lost daemon's rank; -1 otherwise
	Code   int    // EvJobExited: launcher exit code
	Detail string // human-readable cause
}

// EncodeEvent renders the LMONP status-event payload.
func EncodeEvent(e Event) []byte {
	b := lmonp.AppendUint32(nil, uint32(e.Kind))
	b = lmonp.AppendUint32(b, uint32(int32(e.Rank)))
	b = lmonp.AppendUint32(b, uint32(int32(e.Code)))
	return lmonp.AppendString(b, e.Detail)
}

// DecodeEvent parses a status-event payload.
func DecodeEvent(b []byte) (Event, error) {
	rd := lmonp.NewReader(b)
	var e Event
	k, err := rd.Uint32()
	if err != nil {
		return e, err
	}
	e.Kind = EventKind(k)
	rank, err := rd.Uint32()
	if err != nil {
		return e, err
	}
	e.Rank = int(int32(rank))
	code, err := rd.Uint32()
	if err != nil {
		return e, err
	}
	e.Code = int(int32(code))
	if e.Detail, err = rd.String(); err != nil {
		return e, err
	}
	return e, nil
}

// Middleware example (paper §3.4): a tool that needs a TBŌN beyond the
// job's own allocation. LaunchMON launches the back-end daemons
// co-located with the job, then allocates three extra nodes and launches
// middleware daemons on them; every MW daemon receives a personality
// handle and the job's RPDTAB, uses the bootstrap fabric for a collective
// hello, and the tool wires back-ends to middleware by rank.
//
// Run with: go run ./examples/middleware
package main

import (
	"fmt"
	"log"

	"launchmon/internal/cluster"
	"launchmon/internal/core"
	"launchmon/internal/rm"
	"launchmon/internal/rm/slurm"
	"launchmon/internal/vtime"
)

func main() {
	sim := vtime.New()
	cl, err := cluster.New(sim, cluster.Options{Nodes: 16})
	if err != nil {
		log.Fatal(err)
	}
	mgr, err := slurm.Install(cl, slurm.Config{})
	if err != nil {
		log.Fatal(err)
	}
	core.Setup(cl, mgr)

	// Back-end daemons: co-located with the application tasks.
	cl.Register("tool_be", func(p *cluster.Proc) {
		be, err := core.BEInit(p)
		if err != nil {
			return
		}
		be.Finalize()
	})

	// Middleware daemons: on separately allocated nodes. Each contributes
	// its personality line to the front end over the MW collective plane
	// (tree-routed; no hand-rolled master fan-in needed).
	cl.Register("tool_mw", func(p *cluster.Proc) {
		mw, err := core.MWInit(p)
		if err != nil {
			log.Printf("MWInit on %s: %v", p.Node().Name(), err)
			return
		}
		rank, size := mw.Personality()
		line := fmt.Sprintf("mw %d/%d on %s sees %d job tasks", rank, size, p.Node().Name(), len(mw.Proctab()))
		if err := mw.Collective().Gather([]byte(line)); err != nil {
			log.Printf("mw gather: %v", err)
		}
		mw.Finalize()
	})

	sim.Go("boot", func() {
		cl.FrontEnd().SpawnProc(cluster.Spec{Exe: "tool_fe", Main: func(p *cluster.Proc) {
			sess, err := core.LaunchAndSpawn(p, core.Options{
				Job:    rm.JobSpec{Exe: "mpiapp", Nodes: 12, TasksPerNode: 8},
				Daemon: rm.DaemonSpec{Exe: "tool_be"},
			})
			if err != nil {
				log.Print(err)
				return
			}
			fmt.Printf("job up on %d nodes with %d back-end daemons\n",
				len(sess.Proctab().Hosts()), len(sess.Daemons()))

			mwNodes, err := sess.LaunchMW(core.MWOptions{
				Nodes:  3,
				Daemon: rm.DaemonSpec{Exe: "tool_mw"},
				FEData: []byte("tbon-topology-v1"),
			})
			if err != nil {
				log.Print(err)
				return
			}
			fmt.Printf("middleware daemons on fresh allocation: %v\n", mwNodes)
			roster, err := sess.MWGather() // rank-indexed, one line per MW daemon
			if err != nil {
				log.Print(err)
				return
			}
			for _, line := range roster {
				fmt.Println(string(line))
			}
		}})
	})
	sim.Run()
}

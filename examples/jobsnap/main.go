// Jobsnap example: gather the /proc-style state of every task of a
// running MPI job (paper §5.1). A "user" starts a job from the shell; the
// tool attaches to it later by job id, snapshots all 96 tasks, prints the
// merged report, and detaches, leaving the job running — the workflow the
// paper's introduction motivates for production triage.
//
// Run with: go run ./examples/jobsnap
package main

import (
	"fmt"
	"log"
	"time"

	"launchmon/internal/cluster"
	"launchmon/internal/core"
	"launchmon/internal/rm"
	"launchmon/internal/rm/slurm"
	"launchmon/internal/tools/jobsnap"
	"launchmon/internal/vtime"
)

func main() {
	sim := vtime.New()
	cl, err := cluster.New(sim, cluster.Options{Nodes: 12})
	if err != nil {
		log.Fatal(err)
	}
	mgr, err := slurm.Install(cl, slurm.Config{})
	if err != nil {
		log.Fatal(err)
	}
	core.Setup(cl, mgr)
	jobsnap.Install(cl)

	sim.Go("boot", func() {
		cl.FrontEnd().SpawnProc(cluster.Spec{Exe: "user_shell", Main: func(p *cluster.Proc) {
			// The user's job has been running for a while...
			job, err := mgr.StartJob(rm.JobSpec{Exe: "climate_sim", Nodes: 12, TasksPerNode: 8})
			if err != nil {
				log.Print(err)
				return
			}
			p.Sim().Sleep(2 * time.Minute)

			// ...when the user wonders what it is doing.
			res, err := jobsnap.Run(p, job.ID())
			if err != nil {
				log.Print(err)
				return
			}
			fmt.Print(res.Report)
			fmt.Printf("\n%d tasks snapshotted in %.3fs (daemon launch %.3fs); job left running\n",
				res.Lines, res.Total.Seconds(), res.LaunchTime.Seconds())

			// The job is untouched: all tasks still alive (give the
			// detached daemons a moment to exit).
			p.Sim().Sleep(time.Second)
			alive := 0
			for i := 0; i < 12; i++ {
				alive += cl.Node(i).NumProcs() - 1 // minus slurmd
			}
			fmt.Printf("tasks still alive after detach: %d\n", alive)
		}})
	})
	sim.Run()
}

// Quickstart: launch a parallel job under tool control and co-locate a
// minimal tool daemon with it — the launchAndSpawn service that is the
// paper's primary contribution — then exchange a message with the daemons
// and shut everything down.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"launchmon/internal/cluster"
	"launchmon/internal/core"
	"launchmon/internal/rm"
	"launchmon/internal/rm/slurm"
	"launchmon/internal/vtime"
)

func main() {
	// 1. Build a simulated 8-node cluster and boot the SLURM-like RM.
	sim := vtime.New()
	cl, err := cluster.New(sim, cluster.Options{Nodes: 8})
	if err != nil {
		log.Fatal(err)
	}
	mgr, err := slurm.Install(cl, slurm.Config{})
	if err != nil {
		log.Fatal(err)
	}
	core.Setup(cl, mgr) // registers the LaunchMON engine

	// 2. Register the tool's back-end daemon: BEInit joins the session,
	// then every daemon contributes its report to the session's collective
	// gather — routed over the ICCL tree straight to the front end, no
	// hand-rolled fan-in at the master.
	cl.Register("hello_be", func(p *cluster.Proc) {
		be, err := core.BEInit(p)
		if err != nil {
			log.Printf("BEInit failed on %s: %v", p.Node().Name(), err)
			return
		}
		report := []byte(fmt.Sprintf("%s watches %d tasks", p.Node().Name(), len(be.MyProctab())))
		if err := be.Collective().Gather(report); err != nil {
			return
		}
		be.Finalize()
	})

	// 3. The tool front end: one process on the front-end node.
	sim.Go("boot", func() {
		cl.FrontEnd().SpawnProc(cluster.Spec{Exe: "hello_fe", Main: func(p *cluster.Proc) {
			sess, err := core.LaunchAndSpawn(p, core.Options{
				Job:    rm.JobSpec{Exe: "mpiapp", Nodes: 8, TasksPerNode: 4},
				Daemon: rm.DaemonSpec{Exe: "hello_be"},
				FEData: []byte("hello from the front end"),
			})
			if err != nil {
				log.Printf("launchAndSpawn: %v", err)
				return
			}
			fmt.Printf("session %d up: %d tasks, %d daemons, launch took %v\n",
				sess.ID, len(sess.Proctab()), len(sess.Daemons()),
				sess.Timeline.Between("e0_fe_call", "e11_return"))
			reports, err := sess.Gather() // one entry per daemon, rank-indexed
			if err != nil {
				log.Print(err)
				return
			}
			for _, line := range reports {
				fmt.Println(string(line))
			}
			if err := sess.Kill(); err != nil {
				log.Print(err)
			}
			fmt.Println("job and daemons terminated")
		}})
	})
	sim.Run()
}

// STAT example (paper §5.2): attach the Stack Trace Analysis Tool to a
// "hung" MPI job, sample every task's stack through an MRNet-like
// tree-based overlay network bootstrapped by LaunchMON, and print the
// process equivalence classes — the handful of representative tasks a
// full debugger would then attach to.
//
// Run with: go run ./examples/stat
package main

import (
	"fmt"
	"log"
	"time"

	"launchmon/internal/cluster"
	"launchmon/internal/core"
	"launchmon/internal/rm"
	"launchmon/internal/rm/slurm"
	"launchmon/internal/tbon"
	"launchmon/internal/tools/stat"
	"launchmon/internal/vtime"
)

func main() {
	sim := vtime.New()
	cl, err := cluster.New(sim, cluster.Options{Nodes: 32})
	if err != nil {
		log.Fatal(err)
	}
	mgr, err := slurm.Install(cl, slurm.Config{})
	if err != nil {
		log.Fatal(err)
	}
	core.Setup(cl, mgr)
	stat.Install(cl, tbon.Config{})

	sim.Go("boot", func() {
		cl.FrontEnd().SpawnProc(cluster.Spec{Exe: "stat_fe", Main: func(p *cluster.Proc) {
			job, err := mgr.StartJob(rm.JobSpec{Exe: "mpiapp", Nodes: 32, TasksPerNode: 8})
			if err != nil {
				log.Print(err)
				return
			}
			p.Sim().Sleep(30 * time.Second) // the job appears hung...

			inst, err := stat.LaunchWithLaunchMON(p, job.ID(), tbon.Config{})
			if err != nil {
				log.Print(err)
				return
			}
			defer inst.Close()
			fmt.Printf("STAT daemons launched and connected in %.3fs\n", inst.StartupTime.Seconds())

			tree, err := inst.Sample()
			if err != nil {
				log.Print(err)
				return
			}
			classes := tree.EquivalenceClasses()
			fmt.Printf("sampled %d tasks -> %d equivalence classes:\n", tree.Tasks(), len(classes))
			for _, c := range classes {
				fmt.Println(" ", c)
			}
			fmt.Println("attach a full debugger to the representatives above")
		}})
	})
	sim.Run()
}

// Package launchmon is a full reproduction, in pure Go, of
//
//	D. H. Ahn, D. C. Arnold, B. R. de Supinski, G. L. Lee, B. P. Miller,
//	M. Schulz. "Overcoming Scalability Challenges for Tool Daemon
//	Launching." ICPP 2008.
//
// The paper's system — LaunchMON, a scalable, portable infrastructure for
// launching HPC tool daemons through the resource manager's native
// services — lives in internal/core (FE/BE/MW APIs), internal/engine (the
// LaunchMON Engine), internal/lmonp (the LMONP protocol) and internal/iccl
// (the minimal daemon collectives). Everything the paper's evaluation
// depends on is implemented as well: a virtual-time cluster simulator
// (internal/vtime, internal/simnet, internal/cluster), a SLURM-like and a
// BG/L-like resource manager (internal/rm/...), the rsh/DPCL baselines,
// an MRNet-like tree-based overlay network (internal/tbon), and the three
// case-study tools Jobsnap, STAT and Open|SpeedShop
// (internal/tools/...).
//
// Underneath the FE/BE/MW APIs, internal/transport multiplexes every
// session of one front-end process over a single listener (sessions are
// routed by a small hello frame), and internal/proctab streams the RPDTAB
// as bounded-size chunks, so one tool process can drive many concurrent
// sessions at million-task scale. The launch pipeline is cut-through end
// to end on both daemon fabrics: the front end relays table chunks to the
// master daemon as they arrive from the engine, and the master streams
// them through the still-forming ICCL tree (DESIGN.md "Life of a
// session") — the middleware fabric runs the same pipeline during
// LaunchMW. Bulk tool traffic rides the collective data plane
// (internal/coll chunk codec over the same trees, on the BE and MW
// fabrics alike), and internal/health provides per-session failure
// detection with status callbacks over either fabric's topology.
//
// The benchmarks in bench_test.go and the cmd/lmonbench binary regenerate
// every table and figure of the paper's evaluation, with the canonical
// virtual-time results recorded in EXPERIMENTS.md; see README.md for the
// system inventory and DESIGN.md for the architecture, including the
// transport layer, the launch pipeline, the tool data plane and the fault
// model.
package launchmon

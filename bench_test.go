package launchmon_test

import (
	"fmt"
	"testing"
	"time"

	"launchmon/internal/bench"
)

// One benchmark per table/figure of the paper's evaluation, plus the
// ablations. Each iteration regenerates the complete experiment on a
// fresh simulated cluster; reported ns/op is host time to simulate the
// whole sweep (the virtual-time results themselves are printed by
// cmd/lmonbench and recorded in EXPERIMENTS.md).

// BenchmarkFigure3_LaunchAndSpawnModelVsMeasured regenerates Figure 3:
// the launchAndSpawn component breakdown and analytic-model comparison,
// 16..128 daemons at 8 tasks/daemon.
func BenchmarkFigure3_LaunchAndSpawnModelVsMeasured(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Figure3()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != len(bench.Figure3Scales) {
			b.Fatalf("%d rows", len(rows))
		}
	}
}

// BenchmarkFigure5_Jobsnap regenerates Figure 5: Jobsnap total and
// init→attachAndSpawn times, 64..1024 daemons (512..8192 tasks).
func BenchmarkFigure5_Jobsnap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Figure5()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != len(bench.Figure5Scales) {
			b.Fatal("row count")
		}
	}
}

// BenchmarkFigure6_STATStartup regenerates Figure 6: STAT launch+connect,
// MRNet-rsh vs LaunchMON, 4..512 daemons with the rsh failure at 512.
func BenchmarkFigure6_STATStartup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Figure6()
		if err != nil {
			b.Fatal(err)
		}
		if !rows[len(rows)-1].MRNetFailed {
			b.Fatal("rsh did not fail at 512")
		}
	}
}

// BenchmarkTable1_OSSAPAIAccess regenerates Table 1: O|SS APAI access
// times, DPCL vs LaunchMON, 2..32 nodes.
func BenchmarkTable1_OSSAPAIAccess(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table1()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != len(bench.Table1Scales) {
			b.Fatal("row count")
		}
	}
}

// BenchmarkAblation_BGL contrasts the SLURM-like and BG/L-like RM cost
// profiles (§4's closing observation).
func BenchmarkAblation_BGL(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.BGLAblation(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_ICCLFanout sweeps the ICCL tree fan-out at 128
// daemons.
func BenchmarkAblation_ICCLFanout(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.AblationFanout(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_Piggyback compares piggybacked vs separate tool-data
// delivery.
func BenchmarkAblation_Piggyback(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.AblationPiggyback(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_ProctabDistribution compares RPDTAB broadcast vs the
// shared-file mechanism.
func BenchmarkAblation_ProctabDistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.AblationProctab(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_DebugEvents contrasts fixed vs scale-growing RM debug
// events.
func BenchmarkAblation_DebugEvents(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.AblationDebugEvents(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_ConcurrentSessions launches K ∈ {1,4,8} concurrent
// sessions from one FE process over a single transport mux and reports
// the aggregate session-setup throughput at each K.
func BenchmarkAblation_ConcurrentSessions(b *testing.B) {
	var rows []bench.ConcurrentRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.ConcurrentSessions(bench.ConcurrentSessionOpts{}, bench.ConcurrentScales)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != len(bench.ConcurrentScales) {
			b.Fatalf("%d rows", len(rows))
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Throughput, fmt.Sprintf("sessions/vsec-K%d", r.Sessions))
	}
}

// BenchmarkAblation_FailureDetection kills the deepest-ranked daemon's
// node mid-session at K ∈ {64, 1024, 16384} and reports how long (in
// virtual time) the loss takes to reach the front end as a DaemonExited
// callback plus the time to full watchdog teardown, and sweeps heartbeat
// wire overhead vs period on an idle 256-daemon session.
func BenchmarkAblation_FailureDetection(b *testing.B) {
	var rows []bench.FailureRow
	var overhead []bench.OverheadRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.FailureDetection(bench.FailureOpts{}, bench.FailureScales)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != len(bench.FailureScales) {
			b.Fatalf("%d rows", len(rows))
		}
		overhead, err = bench.HeartbeatOverhead(256, bench.OverheadPeriods, 30*time.Second)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.DetectSever.Seconds()*1e3, fmt.Sprintf("detect-vms-K%d", r.Nodes))
		b.ReportMetric(r.Teardown.Seconds()*1e3, fmt.Sprintf("teardown-vms-K%d", r.Nodes))
	}
	for _, r := range overhead {
		b.ReportMetric(r.MsgsPerSec, fmt.Sprintf("hb-msgs-per-vsec-p%s", r.Period))
	}
}

// BenchmarkAblation_Collective compares the flat FE↔BE-master pipe (every
// gathered byte relayed monolithically through the master) against the
// tree-routed collective plane at K ∈ {64, 1024, 16384}: per-link message
// counts are bounded by the fanout and chunk size instead of K, so the
// tree gather must beat the flat-master gather at the largest scale, and
// the sum reduction's FE-bound payload is K-independent outright.
func BenchmarkAblation_Collective(b *testing.B) {
	var rows []bench.CollectiveRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.CollectiveAblation(bench.CollectiveOpts{}, bench.CollectiveScales)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != len(bench.CollectiveScales) {
			b.Fatalf("%d rows", len(rows))
		}
		last := rows[len(rows)-1]
		if last.TreeGather >= last.FlatGather {
			b.Fatalf("tree gather (%v) not faster than flat-master gather (%v) at K=%d",
				last.TreeGather, last.FlatGather, last.Daemons)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.FlatGather.Seconds()*1e3, fmt.Sprintf("flat-gather-vms-K%d", r.Daemons))
		b.ReportMetric(r.TreeGather.Seconds()*1e3, fmt.Sprintf("tree-gather-vms-K%d", r.Daemons))
		b.ReportMetric(r.ReduceSum.Seconds()*1e3, fmt.Sprintf("reduce-sum-vms-K%d", r.Daemons))
	}
}

// BenchmarkAblation_LaunchPipeline compares time-to-DaemonsSpawned under
// the serialized store-and-forward seed pipeline (full-table buffering at
// the FE and the master, monolithic post-bootstrap broadcast) against the
// cut-through pipeline (chunks relayed as they arrive and streamed through
// the still-forming ICCL tree) at K ∈ {64, 1024, 16384}, with cut-through
// measured under both RPDTAB retention modes (full copy at every daemon
// vs rank slices over a shared index). Cut-through must be measurably
// faster at the largest scale, every run must leave the union of the
// daemons' rank slices byte-identical to the FE table, and sliced
// retention must shrink the leaf-daemon footprint by at least an order of
// magnitude at K=16384. The three-config sweep runs ~13 min of wall
// clock — pass -timeout beyond go test's 10 m default.
func BenchmarkAblation_LaunchPipeline(b *testing.B) {
	var rows []bench.LaunchPipeRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.LaunchPipeline(bench.LaunchPipeOpts{}, bench.LaunchScales)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 3*len(bench.LaunchScales) {
			b.Fatalf("%d rows", len(rows))
		}
		byCfg := map[string]map[int]bench.LaunchPipeRow{}
		for _, r := range rows {
			if !r.TableOK {
				b.Fatalf("mode %s/%s K=%d: RPDTAB slice union not byte-identical", r.Mode, r.Table, r.Daemons)
			}
			key := r.Mode + "/" + r.Table
			if byCfg[key] == nil {
				byCfg[key] = map[int]bench.LaunchPipeRow{}
			}
			byCfg[key][r.Daemons] = r
		}
		maxK := bench.LaunchScales[len(bench.LaunchScales)-1]
		sf := byCfg["store-forward/full"][maxK]
		for _, key := range []string{"cut-through/full", "cut-through/sliced"} {
			if ct := byCfg[key][maxK]; ct.Ready >= sf.Ready {
				b.Fatalf("%s (%v) not below store-and-forward (%v) at K=%d",
					key, ct.Ready, sf.Ready, maxK)
			}
		}
		full, sliced := byCfg["cut-through/full"][maxK], byCfg["cut-through/sliced"][maxK]
		if sliced.MemLeaf*10 > full.MemLeaf {
			b.Fatalf("sliced leaf footprint %d B not 10x below full %d B at K=%d",
				sliced.MemLeaf, full.MemLeaf, maxK)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Ready.Seconds()*1e3, fmt.Sprintf("%s-%s-ready-vms-K%d", r.Mode, r.Table, r.Daemons))
		if r.Table == "sliced" {
			b.ReportMetric(float64(r.MemMaster), fmt.Sprintf("sliced-master-peakB-K%d", r.Daemons))
			b.ReportMetric(float64(r.MemInterior), fmt.Sprintf("sliced-interior-peakB-K%d", r.Daemons))
			b.ReportMetric(float64(r.MemLeaf), fmt.Sprintf("sliced-leaf-peakB-K%d", r.Daemons))
		}
	}
}

// BenchmarkAblation_MWPipeline compares LaunchMW time-to-ready under the
// serialized store-and-forward MW seed (the pre-parity middleware
// pipeline: full-table buffering at the MW master, monolithic broadcast
// after bootstrap) against the cut-through seed streamed through the
// still-forming MW tree, at K ∈ {64, 1024, 16384} middleware daemons.
// Cut-through must not be slower at any scale, and both modes must leave
// every MW rank with a byte-identical RPDTAB.
func BenchmarkAblation_MWPipeline(b *testing.B) {
	var rows []bench.MWPipeRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.MWPipeline(bench.MWPipeOpts{}, bench.MWScales)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 2*len(bench.MWScales) {
			b.Fatalf("%d rows", len(rows))
		}
		byMode := map[string]map[int]bench.MWPipeRow{}
		for _, r := range rows {
			if !r.TableOK {
				b.Fatalf("mode %s K=%d: MW RPDTAB not byte-identical at every rank", r.Mode, r.Daemons)
			}
			if byMode[r.Mode] == nil {
				byMode[r.Mode] = map[int]bench.MWPipeRow{}
			}
			byMode[r.Mode][r.Daemons] = r
		}
		for _, k := range bench.MWScales {
			ct, sf := byMode["cut-through"][k], byMode["store-forward"][k]
			if ct.Ready > sf.Ready {
				b.Fatalf("cut-through (%v) above store-and-forward (%v) at K=%d",
					ct.Ready, sf.Ready, k)
			}
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Ready.Seconds()*1e3, fmt.Sprintf("%s-mw-ready-vms-K%d", r.Mode, r.Daemons))
	}
}

// BenchmarkAblation_JobsnapTree quantifies the paper's §5.1 future-work
// suggestion: Jobsnap with a TBŌN-style k-ary collection tree vs the flat
// gather it measured.
func BenchmarkAblation_JobsnapTree(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.AblationJobsnapTree(); err != nil {
			b.Fatal(err)
		}
	}
}
